//! Yield criterion, MSE quality model and Monte-Carlo evaluation engine.
//!
//! This crate implements §4 of the paper — the relaxed, quality-aware yield
//! criterion — and the machinery behind its Fig. 5:
//!
//! * [`mse`] — the local mean-square-error quality function of Eq. (6),
//!   evaluated for any [`MitigationScheme`](faultmit_core::MitigationScheme);
//! * [`EmpiricalCdf`] — weighted empirical cumulative distribution functions
//!   over quality samples;
//! * [`YieldModel`] — the joint probability of Eq. (3)–(5): combining the
//!   binomial failure-count distribution with per-count quality distributions
//!   to obtain the yield at a given quality constraint;
//! * [`MonteCarloEngine`] — the fault-injection campaign that sweeps failure
//!   counts, draws random fault maps and produces per-scheme MSE CDFs
//!   (the Fig. 5 series);
//! * [`report`] — plain-text table helpers used by the figure-regeneration
//!   binaries.
//!
//! # Example
//!
//! ```
//! use faultmit_analysis::{MonteCarloConfig, MonteCarloEngine};
//! use faultmit_core::Scheme;
//! use faultmit_memsim::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MonteCarloConfig::new(MemoryConfig::new(256, 32)?, 1e-4)?
//!     .with_samples_per_count(20)
//!     .with_max_failures(8);
//! let engine = MonteCarloEngine::new(config);
//! let result = engine.run(&Scheme::shuffle32(5)?, 42)?;
//! // With single-bit segments every fault costs at most 1², so the MSE stays tiny.
//! assert!(result.cdf.quantile(0.999) <= 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accumulate;
pub mod cdf;
pub mod error;
pub mod mc_engine;
pub mod mse;
pub mod report;
pub mod yield_model;

pub use accumulate::CatalogueAccumulator;
pub use cdf::{CdfSketch, EmpiricalCdf};
pub use error::AnalysisError;
pub use mc_engine::{MonteCarloConfig, MonteCarloEngine, SchemeMseResult};
pub use mse::{
    block_mse_into, memory_mse, memory_mse_for_data, memory_mse_sparse, memory_mse_sparse_with,
    row_squared_error, word_squared_error,
};
pub use yield_model::{QualityBand, YieldModel};
