//! Error types for the analysis crate.

use std::error::Error;
use std::fmt;

/// Errors reported by the yield/quality analyses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A configuration parameter is invalid.
    InvalidParameter {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A distribution or CDF was queried before any sample was added.
    EmptyDistribution,
    /// An underlying memory operation failed.
    Memory(faultmit_memsim::MemError),
    /// An underlying bit-shuffling operation failed.
    Core(faultmit_core::CoreError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InvalidParameter { reason } => {
                write!(f, "invalid analysis parameter: {reason}")
            }
            AnalysisError::EmptyDistribution => {
                write!(f, "the distribution has no samples")
            }
            AnalysisError::Memory(e) => write!(f, "memory error: {e}"),
            AnalysisError::Core(e) => write!(f, "bit-shuffling error: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Memory(e) => Some(e),
            AnalysisError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<faultmit_memsim::MemError> for AnalysisError {
    fn from(value: faultmit_memsim::MemError) -> Self {
        AnalysisError::Memory(value)
    }
}

impl From<faultmit_core::CoreError> for AnalysisError {
    fn from(value: faultmit_core::CoreError) -> Self {
        AnalysisError::Core(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = AnalysisError::InvalidParameter {
            reason: "negative runs".to_owned(),
        };
        assert!(err.to_string().contains("negative runs"));
        assert!(Error::source(&err).is_none());

        let err = AnalysisError::from(faultmit_memsim::MemError::InvalidProbability { value: 2.0 });
        assert!(Error::source(&err).is_some());

        let err = AnalysisError::from(faultmit_core::CoreError::InvalidGeometry {
            reason: "x".to_owned(),
        });
        assert!(Error::source(&err).is_some());
        assert!(AnalysisError::EmptyDistribution
            .to_string()
            .contains("no samples"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisError>();
    }
}
