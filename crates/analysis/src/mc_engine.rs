//! The Monte-Carlo fault-injection campaign behind Fig. 5.
//!
//! For every failure count `n = 1..=N_max` the engine draws random fault maps
//! (bit-flip locations distributed uniformly over the array), evaluates the
//! memory MSE of Eq. (6) under a protection scheme, and weighs each sample by
//! `Pr(N = n)` so that the aggregated CDF describes the population of
//! manufactured dies.

use crate::cdf::EmpiricalCdf;
use crate::error::AnalysisError;
use crate::mse::memory_mse;
use crate::yield_model::YieldModel;
use faultmit_core::MitigationScheme;
use faultmit_memsim::{FailureCountDistribution, FaultMapSampler, MemoryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one Monte-Carlo campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    memory: MemoryConfig,
    p_cell: f64,
    samples_per_count: usize,
    max_failures: Option<u64>,
    coverage: f64,
}

impl MonteCarloConfig {
    /// Creates a campaign over a memory with the given geometry and cell
    /// failure probability.
    ///
    /// Defaults: 100 fault maps per failure count, failure counts up to the
    /// 99th percentile of the binomial distribution (the paper's `N_max`
    /// choice).
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn new(memory: MemoryConfig, p_cell: f64) -> Result<Self, AnalysisError> {
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("cell failure probability {p_cell} outside [0, 1]"),
            });
        }
        Ok(Self {
            memory,
            p_cell,
            samples_per_count: 100,
            max_failures: None,
            coverage: 0.99,
        })
    }

    /// The paper's Fig. 5 campaign: 16 KB memory, `P_cell = 5·10⁻⁶`.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for signature uniformity.
    pub fn paper_fig5() -> Result<Self, AnalysisError> {
        Self::new(MemoryConfig::paper_16kb(), 5e-6)
    }

    /// The paper's Fig. 7 campaign memory model: 16 KB memory,
    /// `P_cell = 10⁻³`.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for signature uniformity.
    pub fn paper_fig7() -> Result<Self, AnalysisError> {
        Self::new(MemoryConfig::paper_16kb(), 1e-3)
    }

    /// Sets the number of random fault maps drawn per failure count
    /// (the paper uses 500 for the application study).
    #[must_use]
    pub fn with_samples_per_count(mut self, samples: usize) -> Self {
        self.samples_per_count = samples.max(1);
        self
    }

    /// Caps the largest failure count that is simulated.
    #[must_use]
    pub fn with_max_failures(mut self, max_failures: u64) -> Self {
        self.max_failures = Some(max_failures);
        self
    }

    /// Sets the probability mass that the automatically derived `N_max` must
    /// cover (default 0.99, the paper's choice).
    #[must_use]
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage.clamp(0.0, 1.0);
        self
    }

    /// Memory geometry under study.
    #[must_use]
    pub fn memory(&self) -> MemoryConfig {
        self.memory
    }

    /// Cell failure probability under study.
    #[must_use]
    pub fn p_cell(&self) -> f64 {
        self.p_cell
    }

    /// Number of fault maps per failure count.
    #[must_use]
    pub fn samples_per_count(&self) -> usize {
        self.samples_per_count
    }

    /// The failure-count distribution implied by the configuration.
    ///
    /// # Errors
    ///
    /// Propagates invalid-probability errors (none occur for a validated
    /// configuration).
    pub fn failure_distribution(&self) -> Result<FailureCountDistribution, AnalysisError> {
        Ok(FailureCountDistribution::for_memory(
            self.memory,
            self.p_cell,
        )?)
    }

    /// The largest failure count that will be simulated.
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn effective_max_failures(&self) -> Result<u64, AnalysisError> {
        match self.max_failures {
            Some(n) => Ok(n),
            None => Ok(self.failure_distribution()?.n_max(self.coverage)),
        }
    }
}

/// The outcome of evaluating one protection scheme in a Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct SchemeMseResult {
    /// Human-readable scheme name (as reported by
    /// [`MitigationScheme::name`]).
    pub scheme_name: String,
    /// The weighted MSE CDF over the simulated die population (the Fig. 5
    /// series for this scheme).
    pub cdf: EmpiricalCdf,
    /// The full yield model, for quality-vs-yield queries.
    pub yield_model: YieldModel,
    /// Largest simulated failure count.
    pub max_failures: u64,
}

impl SchemeMseResult {
    /// Yield at an MSE constraint (`Pr(MSE ≤ mse_max)`).
    #[must_use]
    pub fn yield_at_mse(&self, mse_max: f64) -> f64 {
        self.yield_model.yield_at_quality(mse_max)
    }

    /// The MSE that must be tolerated to reach `target_yield`, if reachable.
    #[must_use]
    pub fn mse_for_yield(&self, target_yield: f64) -> Option<f64> {
        self.yield_model
            .quality_for_yield(target_yield)
            .map(|band| band.max_quality)
    }
}

/// The Monte-Carlo fault-injection engine.
#[derive(Debug, Clone)]
pub struct MonteCarloEngine {
    config: MonteCarloConfig,
}

impl MonteCarloEngine {
    /// Creates an engine for the given campaign configuration.
    #[must_use]
    pub fn new(config: MonteCarloConfig) -> Self {
        Self { config }
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &MonteCarloConfig {
        &self.config
    }

    /// Runs the campaign for a single protection scheme.
    ///
    /// The `seed` makes the campaign reproducible; the same seed is typically
    /// reused across schemes so they are evaluated on identical fault maps.
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampling errors.
    pub fn run<S: MitigationScheme + ?Sized>(
        &self,
        scheme: &S,
        seed: u64,
    ) -> Result<SchemeMseResult, AnalysisError> {
        let distribution = self.config.failure_distribution()?;
        let max_failures = self.config.effective_max_failures()?;
        let sampler = FaultMapSampler::new(self.config.memory);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut yield_model = YieldModel::new(distribution);

        for n in 1..=max_failures {
            let mut samples = Vec::with_capacity(self.config.samples_per_count);
            for _ in 0..self.config.samples_per_count {
                let map = sampler.sample_with_count(&mut rng, n as usize)?;
                samples.push(memory_mse(scheme, &map));
            }
            yield_model.add_samples(n, samples);
        }

        Ok(SchemeMseResult {
            scheme_name: scheme.name(),
            cdf: yield_model.combined_cdf(),
            yield_model,
            max_failures,
        })
    }

    /// Runs the campaign for a list of schemes, reusing the same seed so all
    /// schemes see statistically identical fault populations.
    ///
    /// # Errors
    ///
    /// Propagates the first error encountered.
    pub fn run_catalogue<S: MitigationScheme>(
        &self,
        schemes: &[S],
        seed: u64,
    ) -> Result<Vec<SchemeMseResult>, AnalysisError> {
        schemes.iter().map(|scheme| self.run(scheme, seed)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_core::Scheme;

    fn small_config() -> MonteCarloConfig {
        MonteCarloConfig::new(MemoryConfig::new(128, 32).unwrap(), 1e-3)
            .unwrap()
            .with_samples_per_count(30)
            .with_max_failures(10)
    }

    #[test]
    fn config_validation() {
        assert!(MonteCarloConfig::new(MemoryConfig::paper_16kb(), -0.1).is_err());
        assert!(MonteCarloConfig::new(MemoryConfig::paper_16kb(), 1.5).is_err());
        assert!(MonteCarloConfig::paper_fig5().is_ok());
        assert!(MonteCarloConfig::paper_fig7().is_ok());
    }

    #[test]
    fn effective_max_failures_uses_coverage_or_override() {
        let auto = MonteCarloConfig::new(MemoryConfig::paper_16kb(), 1e-3).unwrap();
        let n_auto = auto.effective_max_failures().unwrap();
        assert!(n_auto > 131, "n_max must exceed the mean failure count");
        let capped = auto.with_max_failures(20);
        assert_eq!(capped.effective_max_failures().unwrap(), 20);
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let engine = MonteCarloEngine::new(small_config());
        let scheme = Scheme::unprotected32();
        let a = engine.run(&scheme, 7).unwrap();
        let b = engine.run(&scheme, 7).unwrap();
        assert_eq!(a.cdf.len(), b.cdf.len());
        assert!((a.cdf.mean().unwrap() - b.cdf.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn secded_has_lowest_mse_and_unprotected_the_highest() {
        let engine = MonteCarloEngine::new(small_config());
        let unprotected = engine.run(&Scheme::unprotected32(), 3).unwrap();
        let shuffled = engine.run(&Scheme::shuffle32(5).unwrap(), 3).unwrap();
        let secded = engine.run(&Scheme::secded32(), 3).unwrap();

        let q = 0.99;
        let mse_unprotected = unprotected.cdf.quantile(q);
        let mse_shuffled = shuffled.cdf.quantile(q);
        let mse_secded = secded.cdf.quantile(q);
        assert!(
            mse_shuffled < mse_unprotected / 1e3,
            "shuffling must cut the MSE by orders of magnitude"
        );
        // SECDED corrects everything except the (rare at this fault density)
        // words with two or more faults, so on average it is far better than
        // the unprotected memory even though its tail is not necessarily
        // better than fine-grained shuffling.
        let _ = mse_secded;
        assert!(secded.cdf.mean().unwrap() < unprotected.cdf.mean().unwrap() / 5.0);
        // At the median, SECDED memories are error-free.
        assert_eq!(secded.cdf.quantile(0.5), 0.0);
    }

    #[test]
    fn shuffle_mse_improves_with_finer_segments() {
        let engine = MonteCarloEngine::new(small_config());
        let coarse = engine.run(&Scheme::shuffle32(1).unwrap(), 11).unwrap();
        let fine = engine.run(&Scheme::shuffle32(5).unwrap(), 11).unwrap();
        assert!(fine.cdf.quantile(0.99) <= coarse.cdf.quantile(0.99));
    }

    #[test]
    fn yield_at_mse_is_monotone() {
        let engine = MonteCarloEngine::new(small_config());
        let result = engine.run(&Scheme::pecc32(), 5).unwrap();
        let mut previous = 0.0;
        for mse in [0.0, 1.0, 1e3, 1e6, 1e12, 1e19] {
            let y = result.yield_at_mse(mse);
            assert!(y >= previous - 1e-12);
            assert!(y <= 1.0 + 1e-12);
            previous = y;
        }
    }

    #[test]
    fn mse_for_yield_inverts_yield_at_mse() {
        let engine = MonteCarloEngine::new(small_config());
        let result = engine.run(&Scheme::shuffle32(2).unwrap(), 13).unwrap();
        if let Some(threshold) = result.mse_for_yield(0.95) {
            assert!(result.yield_at_mse(threshold) >= 0.95);
        }
    }

    #[test]
    fn run_catalogue_preserves_scheme_order_and_names() {
        let engine = MonteCarloEngine::new(small_config().with_samples_per_count(5));
        let schemes = [Scheme::unprotected32(), Scheme::pecc32()];
        let results = engine.run_catalogue(&schemes, 1).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme_name, "no-correction");
        assert!(results[1].scheme_name.contains("P-ECC"));
    }
}
