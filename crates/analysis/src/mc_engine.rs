//! The Monte-Carlo fault-injection campaign behind Fig. 5.
//!
//! Since the pipeline refactor this module is a thin, MSE-specialised facade
//! over [`faultmit_sim::Campaign`]: for every failure count `n = 1..=N_max`
//! the pipeline draws random fault maps (bit-flip locations distributed
//! uniformly over the array), evaluates the memory MSE of Eq. (6) under
//! **every** protection scheme on the *same* die (paired comparison), and
//! weighs each sample by `Pr(N = n)` so that the aggregated CDF describes
//! the population of manufactured dies.
//!
//! Campaigns are deterministic in the campaign seed and bit-identical at any
//! worker count — see the `determinism` integration test.

use crate::accumulate::CatalogueAccumulator;
use crate::cdf::EmpiricalCdf;
use crate::error::AnalysisError;
use crate::mse::{block_mse_into, memory_mse_for_data, memory_mse_sparse_with};
use crate::yield_model::YieldModel;
use faultmit_core::MitigationScheme;
use faultmit_memsim::{
    DataImage, DieBlock, FailureCountDistribution, FaultBackend, ImageSpec, MemoryConfig,
    OperatingPoint, SramVddBackend, W256,
};
use faultmit_obs as obs;
use faultmit_sim::{
    Campaign, CampaignConfig, KernelKind, Parallelism, RunError, ShardSpec, ShardStats, SimError,
};
use std::convert::Infallible;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of one Monte-Carlo campaign, generic over the
/// fault-generating [`FaultBackend`] (default: the paper's SRAM
/// voltage-scaling model, keeping the legacy `(memory, p_cell)` call sites
/// bit-identical).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig<B: FaultBackend = SramVddBackend> {
    backend: B,
    samples_per_count: usize,
    max_failures: Option<u64>,
    coverage: f64,
    parallelism: Parallelism,
    chunk_size: usize,
    image: ImageSpec,
    kernel: KernelKind,
    auto_threshold: Option<f64>,
    wide_generation: bool,
}

impl MonteCarloConfig<SramVddBackend> {
    /// Creates an SRAM campaign over a memory with the given geometry and
    /// cell failure probability — equivalent to
    /// [`MonteCarloConfig::for_backend`] with
    /// [`SramVddBackend::with_p_cell`].
    ///
    /// Defaults: 100 fault maps per failure count, failure counts up to the
    /// 99th percentile of the binomial distribution (the paper's `N_max`
    /// choice), one pipeline worker per CPU.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `p_cell` is outside
    /// `[0, 1]`.
    pub fn new(memory: MemoryConfig, p_cell: f64) -> Result<Self, AnalysisError> {
        if !(0.0..=1.0).contains(&p_cell) || p_cell.is_nan() {
            return Err(AnalysisError::InvalidParameter {
                reason: format!("cell failure probability {p_cell} outside [0, 1]"),
            });
        }
        Ok(Self::for_backend(
            SramVddBackend::with_p_cell(memory, p_cell).map_err(AnalysisError::from)?,
        ))
    }

    /// The paper's Fig. 5 campaign: 16 KB memory, `P_cell = 5·10⁻⁶`.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for signature uniformity.
    pub fn paper_fig5() -> Result<Self, AnalysisError> {
        Self::new(MemoryConfig::paper_16kb(), 5e-6)
    }

    /// The paper's Fig. 7 campaign memory model: 16 KB memory,
    /// `P_cell = 10⁻³`.
    ///
    /// # Errors
    ///
    /// Never fails; kept fallible for signature uniformity.
    pub fn paper_fig7() -> Result<Self, AnalysisError> {
        Self::new(MemoryConfig::paper_16kb(), 1e-3)
    }
}

impl<B: FaultBackend> MonteCarloConfig<B> {
    /// Creates a campaign drawing dies from the given backend, with the
    /// same defaults as [`MonteCarloConfig::new`].
    #[must_use]
    pub fn for_backend(backend: B) -> Self {
        Self {
            backend,
            samples_per_count: 100,
            max_failures: None,
            coverage: 0.99,
            parallelism: Parallelism::default(),
            chunk_size: 32,
            image: ImageSpec::Zeros,
            kernel: KernelKind::default(),
            auto_threshold: None,
            wide_generation: true,
        }
    }

    /// Sets the number of random fault maps drawn per failure count
    /// (the paper uses 500 for the application study).
    #[must_use]
    pub fn with_samples_per_count(mut self, samples: usize) -> Self {
        self.samples_per_count = samples.max(1);
        self
    }

    /// Caps the largest failure count that is simulated.
    #[must_use]
    pub fn with_max_failures(mut self, max_failures: u64) -> Self {
        self.max_failures = Some(max_failures);
        self
    }

    /// Sets the probability mass that the automatically derived `N_max` must
    /// cover (default 0.99, the paper's choice).
    #[must_use]
    pub fn with_coverage(mut self, coverage: f64) -> Self {
        self.coverage = coverage.clamp(0.0, 1.0);
        self
    }

    /// Sets the pipeline worker policy (serial, fixed thread count, or one
    /// worker per CPU). Results are identical for every setting.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the pipeline chunk size (scheduling granularity; does not affect
    /// results).
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = chunk_size.max(1);
        self
    }

    /// Sets the data image the MSE is evaluated against (default:
    /// [`ImageSpec::Zeros`], the paper's all-zeros background and the
    /// engine's bit-identical fast path).
    ///
    /// With any other image the engine applies faults *relative to the
    /// stored word*: a stuck-at fault that agrees with the data is silent,
    /// so the asymmetric [`faultmit_memsim::FaultKindLaw`]s finally
    /// differentiate schemes. Self-contained images materialise inside the
    /// engine; [`ImageSpec::App`] images must be materialised by the apps
    /// layer and passed to
    /// [`MonteCarloEngine::run_catalogue_shard_on_image`].
    #[must_use]
    pub fn with_image(mut self, image: ImageSpec) -> Self {
        self.image = image;
        self
    }

    /// The data image the MSE is evaluated against.
    #[must_use]
    pub fn image(&self) -> ImageSpec {
        self.image
    }

    /// Selects the evaluation kernel (default: [`KernelKind::Sparse`]).
    ///
    /// All kernels accumulate **bit-identical** results — the choice only
    /// trades throughput: `scalar` walks every faulty row through the
    /// generic path against a materialised image, `sparse` is event-driven,
    /// `bitsliced` evaluates up to 64 dies per `u64` lane, `bitsliced256`
    /// evaluates up to 256 dies per [`W256`] lane, and `auto` resolves to
    /// `sparse` or `bitsliced256` from the campaign's expected fault
    /// density before any sampling happens (see
    /// [`MonteCarloConfig::resolved_kernel`]).
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// The evaluation kernel campaigns run with, as configured (`auto`
    /// stays `auto`; see [`MonteCarloConfig::resolved_kernel`] for the
    /// kernel that actually executes).
    #[must_use]
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Overrides the density threshold (in expected faults per row) at
    /// which [`KernelKind::Auto`] picks the dense bit-sliced kernel over
    /// the sparse one — the `--auto-threshold` CLI knob. `None` (the
    /// default) keeps [`faultmit_sim::AUTO_FAULTS_PER_ROW_THRESHOLD`].
    /// Fixed kernels ignore the threshold entirely.
    #[must_use]
    pub fn with_auto_threshold(mut self, auto_threshold: Option<f64>) -> Self {
        self.auto_threshold = auto_threshold;
        self
    }

    /// The configured `auto`-kernel density threshold override, if any.
    #[must_use]
    pub fn auto_threshold(&self) -> Option<f64> {
        self.auto_threshold
    }

    /// Toggles the lane-interleaved block generation path (default **on**;
    /// see [`faultmit_sim::CampaignConfig::with_wide_generation`]). Results
    /// are bit-identical either way; the toggle is the scalar baseline for
    /// benches and equivalence gates.
    #[must_use]
    pub fn with_wide_generation(mut self, wide_generation: bool) -> Self {
        self.wide_generation = wide_generation;
        self
    }

    /// Whether block kernels use the lane-interleaved generation path.
    #[must_use]
    pub fn wide_generation(&self) -> bool {
        self.wide_generation
    }

    /// The fixed kernel this configuration's [`KernelKind`] resolves to:
    /// fixed kernels return themselves, while [`KernelKind::Auto`] applies
    /// the density policy of [`KernelKind::resolve`] to this campaign's
    /// expected faults per die — `(1 + N_max) / 2`, the mean of the uniform
    /// per-count plan. The resolution depends only on the configuration, so
    /// every shard of a campaign resolves identically.
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn resolved_kernel(&self) -> Result<KernelKind, AnalysisError> {
        #[allow(clippy::cast_precision_loss)]
        let expected_faults_per_die = (1.0 + self.effective_max_failures()? as f64) / 2.0;
        let threshold = self
            .auto_threshold
            .unwrap_or(faultmit_sim::AUTO_FAULTS_PER_ROW_THRESHOLD);
        Ok(self.kernel.resolve_with_threshold(
            expected_faults_per_die,
            self.memory().rows(),
            threshold,
        ))
    }

    /// The fault-generating backend under study.
    #[must_use]
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The backend's operating point (the technology knob this campaign is
    /// evaluated at — `V_DD` for SRAM, refresh interval + temperature for
    /// DRAM, level spacing + drift time for MLC NVM).
    #[must_use]
    pub fn operating_point(&self) -> OperatingPoint {
        self.backend.operating_point()
    }

    /// Memory geometry under study.
    #[must_use]
    pub fn memory(&self) -> MemoryConfig {
        self.backend.config()
    }

    /// Marginal cell failure probability at the backend's operating point.
    #[must_use]
    pub fn p_cell(&self) -> f64 {
        self.backend.p_cell()
    }

    /// Number of fault maps per failure count.
    #[must_use]
    pub fn samples_per_count(&self) -> usize {
        self.samples_per_count
    }

    /// The configured pipeline worker policy.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// The failure-count distribution implied by the configuration.
    ///
    /// # Errors
    ///
    /// Propagates invalid-probability errors (none occur for a validated
    /// configuration).
    pub fn failure_distribution(&self) -> Result<FailureCountDistribution, AnalysisError> {
        Ok(self.backend.failure_distribution()?)
    }

    /// The largest failure count that will be simulated.
    ///
    /// # Errors
    ///
    /// Propagates errors from building the failure distribution.
    pub fn effective_max_failures(&self) -> Result<u64, AnalysisError> {
        match self.max_failures {
            Some(n) => Ok(n),
            None => Ok(self.failure_distribution()?.n_max(self.coverage)),
        }
    }

    /// The equivalent pipeline configuration.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation errors.
    pub fn to_campaign_config(&self) -> Result<CampaignConfig<B>, AnalysisError>
    where
        B: Clone,
    {
        let mut config = CampaignConfig::for_backend(self.backend.clone())
            .map_err(sim_to_analysis_error)?
            .with_samples_per_count(self.samples_per_count)
            .with_coverage(self.coverage)
            .with_chunk_size(self.chunk_size)
            .with_parallelism(self.parallelism)
            .with_image(self.image)
            .with_wide_generation(self.wide_generation);
        if let Some(max) = self.max_failures {
            config = config.with_max_failures(max);
        }
        Ok(config)
    }
}

fn sim_to_analysis_error(error: SimError) -> AnalysisError {
    match error {
        SimError::InvalidParameter { reason } => AnalysisError::InvalidParameter { reason },
        SimError::Memory(e) => AnalysisError::Memory(e),
    }
}

fn run_to_analysis_error(error: RunError<Infallible>) -> AnalysisError {
    match error {
        RunError::Sim(e) => sim_to_analysis_error(e),
        RunError::Eval(infallible) => match infallible {},
    }
}

/// Snapshots the calling thread's recorder (if any) so a `_stats` runner can
/// report the metrics delta its shard produced alongside the timing.
fn metrics_baseline() -> (Option<std::sync::Arc<obs::Recorder>>, obs::MetricsSnapshot) {
    let recorder = obs::current();
    let before = recorder.as_ref().map(|r| r.snapshot()).unwrap_or_default();
    (recorder, before)
}

fn stats_from_nanos(
    gen_nanos: &AtomicU64,
    baseline: &(Option<std::sync::Arc<obs::Recorder>>, obs::MetricsSnapshot),
) -> ShardStats {
    ShardStats {
        generation_seconds: gen_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
        metrics: match &baseline.0 {
            Some(recorder) => recorder.snapshot().since(&baseline.1),
            None => obs::MetricsSnapshot::default(),
        },
    }
}

/// The outcome of evaluating one protection scheme in a Monte-Carlo campaign.
#[derive(Debug, Clone)]
pub struct SchemeMseResult {
    /// Human-readable scheme name (as reported by
    /// [`MitigationScheme::name`]).
    pub scheme_name: String,
    /// The weighted MSE CDF over the simulated die population (the Fig. 5
    /// series for this scheme).
    pub cdf: EmpiricalCdf,
    /// The full yield model, for quality-vs-yield queries.
    pub yield_model: YieldModel,
    /// Largest simulated failure count.
    pub max_failures: u64,
}

impl SchemeMseResult {
    /// Yield at an MSE constraint (`Pr(MSE ≤ mse_max)`).
    #[must_use]
    pub fn yield_at_mse(&self, mse_max: f64) -> f64 {
        self.yield_model.yield_at_quality(mse_max)
    }

    /// The MSE that must be tolerated to reach `target_yield`, if reachable.
    #[must_use]
    pub fn mse_for_yield(&self, target_yield: f64) -> Option<f64> {
        self.yield_model
            .quality_for_yield(target_yield)
            .map(|band| band.max_quality)
    }
}

/// The Monte-Carlo fault-injection engine — an MSE-specialised facade over
/// the parallel pipeline, generic over the fault-generating backend.
#[derive(Debug, Clone)]
pub struct MonteCarloEngine<B: FaultBackend = SramVddBackend> {
    config: MonteCarloConfig<B>,
}

impl<B: FaultBackend + Clone> MonteCarloEngine<B> {
    /// Creates an engine for the given campaign configuration.
    #[must_use]
    pub fn new(config: MonteCarloConfig<B>) -> Self {
        Self { config }
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &MonteCarloConfig<B> {
        &self.config
    }

    /// Runs the campaign for a single protection scheme (thin shim over
    /// [`MonteCarloEngine::run_catalogue`] with a one-element catalogue).
    ///
    /// The `seed` makes the campaign reproducible; reusing the same seed
    /// across calls evaluates every scheme on identical fault maps.
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampling errors.
    pub fn run<S: MitigationScheme + Sync + ?Sized>(
        &self,
        scheme: &S,
        seed: u64,
    ) -> Result<SchemeMseResult, AnalysisError> {
        let mut results = self.run_catalogue(&[scheme], seed)?;
        Ok(results.remove(0))
    }

    /// Runs one paired campaign over the whole scheme catalogue: every
    /// scheme is evaluated against the **same** fault map of every sampled
    /// die, so per-die comparisons are exact rather than only statistically
    /// matched.
    ///
    /// This is the monolithic ([`ShardSpec::solo`]) special case of the
    /// sharded path: one full-coverage shard state, immediately reduced to
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates the first error encountered.
    pub fn run_catalogue<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
    ) -> Result<Vec<SchemeMseResult>, AnalysisError> {
        let state = self.run_catalogue_shard(schemes, seed, ShardSpec::solo())?;
        self.results_from_state(schemes, state)
    }

    /// Runs one shard of the paired campaign, returning the raw accumulator
    /// state instead of finished results.
    ///
    /// Shard states merged in shard order (via
    /// [`faultmit_sim::Accumulator::merge`]) are bit-identical to the
    /// monolithic [`MonteCarloEngine::run_catalogue`] accumulation; feed the
    /// merged state to [`MonteCarloEngine::results_from_state`] to obtain
    /// the exact monolithic results.
    ///
    /// # Errors
    ///
    /// Propagates configuration and sampling errors.
    pub fn run_catalogue_shard<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
    ) -> Result<CatalogueAccumulator, AnalysisError> {
        self.run_catalogue_shard_gen(schemes, seed, shard, None)
    }

    /// [`MonteCarloEngine::run_catalogue_shard`] plus a [`ShardStats`]
    /// timing breakdown (generation seconds summed across workers). The
    /// accumulator is bit-identical to the untimed runner's; the plain
    /// runner skips the clock reads entirely.
    ///
    /// # Errors
    ///
    /// Same contract as [`MonteCarloEngine::run_catalogue_shard`].
    pub fn run_catalogue_shard_stats<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
    ) -> Result<(CatalogueAccumulator, ShardStats), AnalysisError> {
        let gen_nanos = AtomicU64::new(0);
        let baseline = metrics_baseline();
        let state = self.run_catalogue_shard_gen(schemes, seed, shard, Some(&gen_nanos))?;
        Ok((state, stats_from_nanos(&gen_nanos, &baseline)))
    }

    fn run_catalogue_shard_gen<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        gen_timer: Option<&AtomicU64>,
    ) -> Result<CatalogueAccumulator, AnalysisError> {
        match self.config.image {
            // The all-zeros fast path: exactly the historical evaluation,
            // bit-identical to the pre-image pipeline.
            ImageSpec::Zeros => {
                self.run_catalogue_shard_on_image_gen(schemes, seed, shard, None, gen_timer)
            }
            spec => {
                // Self-contained images resolve here; App images propagate
                // memsim's "resolve through the apps layer" error. The
                // event-driven kernel gathers image words per faulty row, so
                // the image is never materialised memory-wide.
                let image = spec.try_materialise(self.config.memory())?;
                self.run_catalogue_shard_with_image(schemes, seed, shard, image.as_ref(), gen_timer)
            }
        }
    }

    /// The campaign body for a row-addressable data image: dies evaluate
    /// through the configured [`KernelKind`], querying `image` only at
    /// fault-bearing rows — bit-identical to evaluating against the image's
    /// dense [`DataImage::materialise`] vector, whichever kernel runs.
    fn run_catalogue_shard_with_image<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        image: &dyn DataImage,
        gen_timer: Option<&AtomicU64>,
    ) -> Result<CatalogueAccumulator, AnalysisError> {
        self.run_campaign_kernel(schemes, seed, shard, |row| image.word(row), gen_timer)
    }

    /// Dispatches one shard of the paired campaign to the configured
    /// evaluation kernel (`auto` resolves first, via
    /// [`MonteCarloConfig::resolved_kernel`]), with `written` supplying the
    /// stored word of every row. Every kernel folds the identical per-die
    /// squared-error sums in the identical order, so the returned
    /// accumulator is bit-identical across [`KernelKind`] choices.
    fn run_campaign_kernel<S, W>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        written: W,
        gen_timer: Option<&AtomicU64>,
    ) -> Result<CatalogueAccumulator, AnalysisError>
    where
        S: MitigationScheme + Sync,
        W: Fn(usize) -> u64 + Sync,
    {
        let campaign = Campaign::new(self.config.to_campaign_config()?);
        let kernel = self.config.resolved_kernel()?;
        // One dispatch event per shard run: `auto` resolves before any
        // sampling, so the counters record the kernel that actually executed.
        obs::count(
            match kernel {
                KernelKind::Auto => unreachable!("resolved_kernel always returns a fixed kernel"),
                KernelKind::Scalar => obs::Counter::DispatchScalar,
                KernelKind::Sparse => obs::Counter::DispatchSparse,
                KernelKind::Bitsliced => obs::Counter::DispatchBitsliced,
                KernelKind::Bitsliced256 => obs::Counter::DispatchBitsliced256,
            },
            1,
        );
        match kernel {
            KernelKind::Auto => unreachable!("resolved_kernel always returns a fixed kernel"),
            KernelKind::Sparse => campaign
                .try_run_shard_timed(
                    schemes,
                    seed,
                    shard,
                    |scheme, map| {
                        Ok::<f64, Infallible>(memory_mse_sparse_with(scheme, map, &written))
                    },
                    || CatalogueAccumulator::new(schemes.len()),
                    gen_timer,
                )
                .map_err(run_to_analysis_error),
            KernelKind::Scalar => {
                // The flat-scan kernel walks a dense image, so materialise
                // `written` once up front; the per-row words are the same
                // ones the sparse closure would return.
                let data: Vec<u64> = (0..self.config.memory().rows()).map(&written).collect();
                campaign
                    .try_run_shard_timed(
                        schemes,
                        seed,
                        shard,
                        |scheme, map| {
                            Ok::<f64, Infallible>(memory_mse_for_data(scheme, map, &data))
                        },
                        || CatalogueAccumulator::new(schemes.len()),
                        gen_timer,
                    )
                    .map_err(run_to_analysis_error)
            }
            KernelKind::Bitsliced => campaign
                .run_shard_blocks_timed(
                    schemes,
                    seed,
                    shard,
                    |scheme, map| memory_mse_sparse_with(scheme, map, &written),
                    |scheme, block: &DieBlock<'_>, out: &mut [f64]| {
                        block_mse_into(scheme, block, &written, out);
                    },
                    || CatalogueAccumulator::new(schemes.len()),
                    gen_timer,
                )
                .map_err(sim_to_analysis_error),
            KernelKind::Bitsliced256 => campaign
                .run_shard_blocks_timed(
                    schemes,
                    seed,
                    shard,
                    |scheme, map| memory_mse_sparse_with(scheme, map, &written),
                    |scheme, block: &DieBlock<'_, W256>, out: &mut [f64]| {
                        block_mse_into(scheme, block, &written, out);
                    },
                    || CatalogueAccumulator::new(schemes.len()),
                    gen_timer,
                )
                .map_err(sim_to_analysis_error),
        }
    }

    /// Runs one shard of the paired campaign against an explicit data
    /// image — the data-aware twin of
    /// [`MonteCarloEngine::run_catalogue_shard`], for callers that
    /// materialise image words themselves (the apps layer resolves
    /// [`ImageSpec::App`] matrices this way).
    ///
    /// `data` holds one stored word per memory row; `None` selects the
    /// all-zeros fast path, whose accumulation is **bit-identical** to the
    /// legacy pipeline — and to `Some` of an explicit all-zeros vector,
    /// since a fault's observed word does not depend on how the zero
    /// background is spelled.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when `data` has fewer
    /// entries than the memory has rows, and propagates campaign errors.
    pub fn run_catalogue_shard_on_image<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        data: Option<&[u64]>,
    ) -> Result<CatalogueAccumulator, AnalysisError> {
        self.run_catalogue_shard_on_image_gen(schemes, seed, shard, data, None)
    }

    /// [`MonteCarloEngine::run_catalogue_shard_on_image`] plus a
    /// [`ShardStats`] timing breakdown (see
    /// [`MonteCarloEngine::run_catalogue_shard_stats`]).
    ///
    /// # Errors
    ///
    /// Same contract as [`MonteCarloEngine::run_catalogue_shard_on_image`].
    pub fn run_catalogue_shard_on_image_stats<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        data: Option<&[u64]>,
    ) -> Result<(CatalogueAccumulator, ShardStats), AnalysisError> {
        let gen_nanos = AtomicU64::new(0);
        let baseline = metrics_baseline();
        let state =
            self.run_catalogue_shard_on_image_gen(schemes, seed, shard, data, Some(&gen_nanos))?;
        Ok((state, stats_from_nanos(&gen_nanos, &baseline)))
    }

    fn run_catalogue_shard_on_image_gen<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        seed: u64,
        shard: ShardSpec,
        data: Option<&[u64]>,
        gen_timer: Option<&AtomicU64>,
    ) -> Result<CatalogueAccumulator, AnalysisError> {
        if let Some(data) = data {
            let rows = self.config.memory().rows();
            if data.len() < rows {
                return Err(AnalysisError::InvalidParameter {
                    reason: format!(
                        "data image has {} words but the memory has {rows} rows",
                        data.len()
                    ),
                });
            }
        }
        match data {
            // `memory_mse_sparse` is `memory_mse_sparse_with` against the
            // `|_| 0` word source, so the zeros fast path and an explicit
            // zeros vector share one dispatcher without a bit of drift.
            None => self.run_campaign_kernel(schemes, seed, shard, |_| 0, gen_timer),
            Some(data) => {
                self.run_campaign_kernel(schemes, seed, shard, |row| data[row], gen_timer)
            }
        }
    }

    /// Converts accumulated (possibly shard-merged) campaign state into the
    /// per-scheme MSE results — the reduction half of
    /// [`MonteCarloEngine::run_catalogue`].
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidParameter`] when the state tracks a
    /// different number of schemes than the catalogue, and propagates
    /// distribution errors.
    pub fn results_from_state<S: MitigationScheme + Sync>(
        &self,
        schemes: &[S],
        state: CatalogueAccumulator,
    ) -> Result<Vec<SchemeMseResult>, AnalysisError> {
        if state.scheme_count() != schemes.len() {
            return Err(AnalysisError::InvalidParameter {
                reason: format!(
                    "campaign state tracks {} schemes, catalogue has {}",
                    state.scheme_count(),
                    schemes.len()
                ),
            });
        }
        let distribution = self.config.failure_distribution()?;
        let max_failures = self.config.effective_max_failures()?;
        Ok(state
            .into_yield_models(distribution)
            .into_iter()
            .zip(schemes)
            .map(|(yield_model, scheme)| SchemeMseResult {
                scheme_name: scheme.name(),
                cdf: yield_model.combined_cdf(),
                yield_model,
                max_failures,
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultmit_core::Scheme;

    fn small_config() -> MonteCarloConfig {
        MonteCarloConfig::new(MemoryConfig::new(128, 32).unwrap(), 1e-3)
            .unwrap()
            .with_samples_per_count(30)
            .with_max_failures(10)
    }

    #[test]
    fn config_validation() {
        assert!(MonteCarloConfig::new(MemoryConfig::paper_16kb(), -0.1).is_err());
        assert!(MonteCarloConfig::new(MemoryConfig::paper_16kb(), 1.5).is_err());
        assert!(MonteCarloConfig::paper_fig5().is_ok());
        assert!(MonteCarloConfig::paper_fig7().is_ok());
    }

    #[test]
    fn effective_max_failures_uses_coverage_or_override() {
        let auto = MonteCarloConfig::new(MemoryConfig::paper_16kb(), 1e-3).unwrap();
        let n_auto = auto.effective_max_failures().unwrap();
        assert!(n_auto > 131, "n_max must exceed the mean failure count");
        let capped = auto.with_max_failures(20);
        assert_eq!(capped.effective_max_failures().unwrap(), 20);
    }

    #[test]
    fn identical_seeds_reproduce_identical_results() {
        let engine = MonteCarloEngine::new(small_config());
        let scheme = Scheme::unprotected32();
        let a = engine.run(&scheme, 7).unwrap();
        let b = engine.run(&scheme, 7).unwrap();
        assert_eq!(a.cdf.len(), b.cdf.len());
        assert!((a.cdf.mean().unwrap() - b.cdf.mean().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn single_run_matches_catalogue_entry() {
        // A scheme evaluated alone and as part of a catalogue sees the same
        // dies (shared seed → shared fault maps), so the CDFs are identical.
        let engine = MonteCarloEngine::new(small_config());
        let alone = engine.run(&Scheme::pecc32(), 21).unwrap();
        let catalogue = engine
            .run_catalogue(&[Scheme::unprotected32(), Scheme::pecc32()], 21)
            .unwrap();
        assert_eq!(alone.cdf, catalogue[1].cdf);
    }

    #[test]
    fn secded_has_lowest_mse_and_unprotected_the_highest() {
        let engine = MonteCarloEngine::new(small_config());
        let results = engine
            .run_catalogue(
                &[
                    Scheme::unprotected32(),
                    Scheme::shuffle32(5).unwrap(),
                    Scheme::secded32(),
                ],
                3,
            )
            .unwrap();
        let (unprotected, shuffled, secded) = (&results[0], &results[1], &results[2]);

        let q = 0.99;
        let mse_unprotected = unprotected.cdf.quantile(q);
        let mse_shuffled = shuffled.cdf.quantile(q);
        assert!(
            mse_shuffled < mse_unprotected / 1e3,
            "shuffling must cut the MSE by orders of magnitude"
        );
        // SECDED corrects everything except the (rare at this fault density)
        // words with two or more faults, so on average it is far better than
        // the unprotected memory even though its tail is not necessarily
        // better than fine-grained shuffling.
        assert!(secded.cdf.mean().unwrap() < unprotected.cdf.mean().unwrap() / 5.0);
        // At the median, SECDED memories are error-free.
        assert_eq!(secded.cdf.quantile(0.5), 0.0);
    }

    #[test]
    fn shuffle_mse_improves_with_finer_segments() {
        let engine = MonteCarloEngine::new(small_config());
        let results = engine
            .run_catalogue(
                &[Scheme::shuffle32(1).unwrap(), Scheme::shuffle32(5).unwrap()],
                11,
            )
            .unwrap();
        assert!(results[1].cdf.quantile(0.99) <= results[0].cdf.quantile(0.99));
    }

    #[test]
    fn paired_comparison_holds_per_die_not_just_in_distribution() {
        // On every single die, finest-grain shuffling can never lose to no
        // protection — an exact paired comparison, impossible with
        // per-scheme resampling.
        let engine = MonteCarloEngine::new(small_config());
        let results = engine
            .run_catalogue(
                &[Scheme::unprotected32(), Scheme::shuffle32(5).unwrap()],
                17,
            )
            .unwrap();
        // Both schemes share every die, so their per-count sample sequences
        // line up one-to-one.
        for (n, unprotected_cdf) in results[0].yield_model.per_count_cdfs() {
            let shuffle_cdf = &results[1].yield_model.per_count_cdfs()[n];
            for ((mse_u, _), (mse_s, _)) in unprotected_cdf.samples().zip(shuffle_cdf.samples()) {
                assert!(
                    mse_s <= mse_u + 1e-12,
                    "n = {n}: shuffle {mse_s} > unprotected {mse_u}"
                );
            }
        }
    }

    #[test]
    fn serial_and_parallel_engines_agree_exactly() {
        let serial = MonteCarloEngine::new(small_config().with_parallelism(Parallelism::Serial));
        let parallel =
            MonteCarloEngine::new(small_config().with_parallelism(Parallelism::threads(4)));
        let schemes = [Scheme::unprotected32(), Scheme::pecc32()];
        let a = serial.run_catalogue(&schemes, 5).unwrap();
        let b = parallel.run_catalogue(&schemes, 5).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cdf, y.cdf);
        }
    }

    #[test]
    fn yield_at_mse_is_monotone() {
        let engine = MonteCarloEngine::new(small_config());
        let result = engine.run(&Scheme::pecc32(), 5).unwrap();
        let mut previous = 0.0;
        for mse in [0.0, 1.0, 1e3, 1e6, 1e12, 1e19] {
            let y = result.yield_at_mse(mse);
            assert!(y >= previous - 1e-12);
            assert!(y <= 1.0 + 1e-12);
            previous = y;
        }
    }

    #[test]
    fn mse_for_yield_inverts_yield_at_mse() {
        let engine = MonteCarloEngine::new(small_config());
        let result = engine.run(&Scheme::shuffle32(2).unwrap(), 13).unwrap();
        if let Some(threshold) = result.mse_for_yield(0.95) {
            assert!(result.yield_at_mse(threshold) >= 0.95);
        }
    }

    #[test]
    fn engine_runs_on_every_backend_and_reports_its_operating_point() {
        use faultmit_memsim::{Backend, BackendKind};
        let memory = MemoryConfig::new(128, 32).unwrap();
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
        for kind in BackendKind::ALL {
            let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
            let op = backend.operating_point();
            let config = MonteCarloConfig::for_backend(backend)
                .with_samples_per_count(10)
                .with_max_failures(6);
            assert_eq!(config.operating_point(), op);
            let engine = MonteCarloEngine::new(config);
            let results = engine.run_catalogue(&schemes, 29).unwrap();
            assert_eq!(results.len(), 2, "{kind}");
            // Shuffling never loses to no protection, whatever the backend's
            // spatial law.
            assert!(
                results[1].cdf.quantile(0.99) <= results[0].cdf.quantile(0.99),
                "{kind}: shuffle q99 exceeds unprotected q99"
            );
        }
    }

    #[test]
    fn sram_backend_engine_matches_the_legacy_constructor_bit_for_bit() {
        use faultmit_memsim::SramVddBackend;
        let memory = MemoryConfig::new(128, 32).unwrap();
        let legacy = MonteCarloEngine::new(
            MonteCarloConfig::new(memory, 1e-3)
                .unwrap()
                .with_samples_per_count(15)
                .with_max_failures(8),
        );
        let explicit = MonteCarloEngine::new(
            MonteCarloConfig::for_backend(SramVddBackend::with_p_cell(memory, 1e-3).unwrap())
                .with_samples_per_count(15)
                .with_max_failures(8),
        );
        let schemes = [Scheme::unprotected32(), Scheme::secded32()];
        let a = legacy.run_catalogue(&schemes, 41).unwrap();
        let b = explicit.run_catalogue(&schemes, 41).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cdf, y.cdf);
        }
    }

    #[test]
    fn shard_states_merged_in_order_reproduce_the_monolithic_results() {
        use faultmit_sim::Accumulator;
        let engine = MonteCarloEngine::new(small_config());
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(2).unwrap()];
        let monolithic = engine.run_catalogue(&schemes, 37).unwrap();
        for shard_count in [1usize, 2, 3, 7] {
            let mut merged = CatalogueAccumulator::new(schemes.len());
            for index in 0..shard_count {
                let shard = ShardSpec::new(index, shard_count).unwrap();
                merged.merge(engine.run_catalogue_shard(&schemes, 37, shard).unwrap());
            }
            let results = engine.results_from_state(&schemes, merged).unwrap();
            for (a, b) in monolithic.iter().zip(&results) {
                assert_eq!(a.scheme_name, b.scheme_name, "{shard_count} shards");
                assert_eq!(a.cdf, b.cdf, "{shard_count} shards: {}", a.scheme_name);
                assert_eq!(
                    a.cdf.total_weight().to_bits(),
                    b.cdf.total_weight().to_bits(),
                    "{shard_count} shards"
                );
            }
        }
    }

    #[test]
    fn zeros_image_is_bit_identical_to_the_legacy_path() {
        // Explicit Zeros image, an explicit all-zeros word vector, and the
        // legacy (imageless) engine must all accumulate identical bits.
        let legacy = MonteCarloEngine::new(small_config());
        let imaged = MonteCarloEngine::new(small_config().with_image(ImageSpec::Zeros));
        let schemes = [Scheme::unprotected32(), Scheme::shuffle32(2).unwrap()];
        let a = legacy
            .run_catalogue_shard(&schemes, 23, ShardSpec::solo())
            .unwrap();
        let b = imaged
            .run_catalogue_shard(&schemes, 23, ShardSpec::solo())
            .unwrap();
        let zeros = vec![0u64; legacy.config().memory().rows()];
        let c = legacy
            .run_catalogue_shard_on_image(&schemes, 23, ShardSpec::solo(), Some(&zeros))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn every_kernel_accumulates_identical_bits_on_zeros_and_data_images() {
        use faultmit_memsim::{FaultKindLaw, SramVddBackend};
        let memory = MemoryConfig::new(128, 32).unwrap();
        let backend = SramVddBackend::with_p_cell(memory, 1e-3)
            .unwrap()
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.6,
            })
            .unwrap();
        let schemes = [
            Scheme::unprotected32(),
            Scheme::secded32(),
            Scheme::shuffle32(2).unwrap(),
        ];
        for image in [ImageSpec::Zeros, ImageSpec::UniformRandom { seed: 0xB17 }] {
            let run = |kernel| {
                // 70 samples per count stresses both full 64-die blocks and
                // the scalar tail inside every chunk.
                let config = MonteCarloConfig::for_backend(backend)
                    .with_samples_per_count(70)
                    .with_max_failures(5)
                    .with_chunk_size(67)
                    .with_image(image)
                    .with_kernel(kernel);
                MonteCarloEngine::new(config)
                    .run_catalogue_shard(&schemes, 91, ShardSpec::solo())
                    .unwrap()
            };
            let sparse = run(KernelKind::Sparse);
            assert_eq!(sparse, run(KernelKind::Scalar), "{image:?}: scalar");
            assert_eq!(sparse, run(KernelKind::Bitsliced), "{image:?}: bitsliced");
            assert_eq!(
                sparse,
                run(KernelKind::Bitsliced256),
                "{image:?}: bitsliced256"
            );
            assert_eq!(sparse, run(KernelKind::Auto), "{image:?}: auto");
        }
    }

    #[test]
    fn auto_kernel_resolution_tracks_the_campaign_density() {
        // 5 expected faults spread over 128 rows is far below the 8-per-row
        // threshold → sparse; the same kernel over an 8-row memory crosses
        // it → bitsliced256.
        let sparse_config = MonteCarloConfig::new(MemoryConfig::new(128, 32).unwrap(), 1e-3)
            .unwrap()
            .with_max_failures(5)
            .with_kernel(KernelKind::Auto);
        assert_eq!(sparse_config.kernel(), KernelKind::Auto);
        assert_eq!(sparse_config.resolved_kernel().unwrap(), KernelKind::Sparse);
        let dense_config = MonteCarloConfig::new(MemoryConfig::new(8, 32).unwrap(), 1e-3)
            .unwrap()
            .with_max_failures(5)
            .with_kernel(KernelKind::Auto);
        assert_eq!(
            dense_config.resolved_kernel().unwrap(),
            KernelKind::Bitsliced256
        );
        // Fixed kernels resolve to themselves.
        assert_eq!(
            sparse_config
                .with_kernel(KernelKind::Bitsliced)
                .resolved_kernel()
                .unwrap(),
            KernelKind::Bitsliced
        );
    }

    #[test]
    fn stuck_at_zero_faults_are_silent_on_zeros_and_observable_on_ones() {
        use faultmit_memsim::{FaultKindLaw, SramVddBackend};
        let memory = MemoryConfig::new(128, 32).unwrap();
        let backend = SramVddBackend::with_p_cell(memory, 1e-3)
            .unwrap()
            .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 1.0,
            })
            .unwrap();
        let build = |image| {
            MonteCarloEngine::new(
                MonteCarloConfig::for_backend(backend)
                    .with_samples_per_count(10)
                    .with_max_failures(6)
                    .with_image(image),
            )
        };
        let schemes = [Scheme::unprotected32(), Scheme::secded32()];
        let silent = build(ImageSpec::Zeros).run_catalogue(&schemes, 3).unwrap();
        for result in &silent {
            assert_eq!(
                result.cdf.mean().unwrap_or(0.0),
                0.0,
                "{}: stuck-at-0 over zeros must be invisible",
                result.scheme_name
            );
        }
        let loud = build(ImageSpec::Ones).run_catalogue(&schemes, 3).unwrap();
        assert!(
            loud[0].cdf.mean().unwrap() > 0.0,
            "stuck-at-0 over ones must corrupt the unprotected memory"
        );
    }

    #[test]
    fn app_images_are_deferred_to_the_apps_layer() {
        use faultmit_memsim::AppImage;
        let engine =
            MonteCarloEngine::new(small_config().with_image(ImageSpec::App(AppImage::Wine)));
        assert_eq!(engine.config().image(), ImageSpec::App(AppImage::Wine));
        let error = engine
            .run_catalogue(&[Scheme::unprotected32()], 1)
            .unwrap_err();
        assert!(error.to_string().contains("apps layer"), "{error}");
    }

    #[test]
    fn short_data_images_are_rejected() {
        let engine = MonteCarloEngine::new(small_config());
        let error = engine
            .run_catalogue_shard_on_image(
                &[Scheme::unprotected32()],
                1,
                ShardSpec::solo(),
                Some(&[0u64; 3]),
            )
            .unwrap_err();
        assert!(error.to_string().contains("3 words"), "{error}");
    }

    #[test]
    fn results_from_state_rejects_catalogue_size_mismatches() {
        let engine = MonteCarloEngine::new(small_config());
        let schemes = [Scheme::unprotected32(), Scheme::pecc32()];
        let state = CatalogueAccumulator::new(3);
        assert!(engine.results_from_state(&schemes, state).is_err());
    }

    #[test]
    fn run_catalogue_preserves_scheme_order_and_names() {
        let engine = MonteCarloEngine::new(small_config().with_samples_per_count(5));
        let schemes = [Scheme::unprotected32(), Scheme::pecc32()];
        let results = engine.run_catalogue(&schemes, 1).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].scheme_name, "no-correction");
        assert!(results[1].scheme_name.contains("P-ECC"));
    }
}
