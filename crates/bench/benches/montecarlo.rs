//! Criterion benchmarks of the Monte-Carlo analysis pipeline behind Fig. 5:
//! fault-map sampling, Eq. (6) MSE evaluation per scheme, and a reduced
//! end-to-end campaign.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use faultmit_analysis::{memory_mse, MonteCarloConfig, MonteCarloEngine};
use faultmit_core::Scheme;
use faultmit_memsim::{FaultMapSampler, MemoryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fault_map_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_map_sampling");
    let sampler = FaultMapSampler::new(MemoryConfig::paper_16kb());
    for n_faults in [1usize, 16, 150] {
        group.bench_with_input(
            BenchmarkId::new("sample_with_count", n_faults),
            &n_faults,
            |b, &n| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| sampler.sample_with_count(&mut rng, black_box(n)).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_mse_per_scheme(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_mse");
    let sampler = FaultMapSampler::new(MemoryConfig::paper_16kb());
    let mut rng = StdRng::seed_from_u64(2);
    let faults = sampler.sample_with_count(&mut rng, 150).unwrap();

    for scheme in [
        Scheme::unprotected32(),
        Scheme::secded32(),
        Scheme::pecc32(),
        Scheme::shuffle32(1).unwrap(),
        Scheme::shuffle32(5).unwrap(),
    ] {
        group.bench_with_input(
            BenchmarkId::new("eq6", faultmit_core::MitigationScheme::name(&scheme)),
            &scheme,
            |b, scheme| b.iter(|| memory_mse(black_box(scheme), black_box(&faults))),
        );
    }
    group.finish();
}

fn bench_small_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_campaign");
    group.sample_size(10);
    let config = MonteCarloConfig::new(MemoryConfig::new(512, 32).unwrap(), 1e-4)
        .unwrap()
        .with_samples_per_count(10)
        .with_max_failures(6);
    let engine = MonteCarloEngine::new(config);
    group.bench_function("fig5_reduced_single_scheme", |b| {
        b.iter(|| {
            engine
                .run(&Scheme::shuffle32(2).unwrap(), black_box(7))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fault_map_sampling,
    bench_mse_per_scheme,
    bench_small_campaign
);
criterion_main!(benches);
