//! Criterion benchmarks of the application benchmarks behind Table 1 /
//! Fig. 7: model training on clean data and one full quality evaluation
//! through the faulty-memory storage path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use faultmit_apps::datasets::{HarDataset, MadelonDataset, WineQualityDataset};
use faultmit_apps::preprocessing::{train_test_split, Standardizer};
use faultmit_apps::{Benchmark, ElasticNet, KnnClassifier, Pca, QualityEvaluator};
use faultmit_core::Scheme;

fn bench_model_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_training");
    group.sample_size(20);

    let wine = WineQualityDataset::new(300, 1).generate();
    let wine_split = train_test_split(&wine.features, &wine.targets, 0.8).unwrap();
    let wine_x = Standardizer::fit(&wine_split.train_x)
        .transform(&wine_split.train_x)
        .unwrap();
    group.bench_function("elasticnet_fit_300x11", |b| {
        b.iter(|| {
            let mut model = ElasticNet::paper_default().unwrap();
            model
                .fit(black_box(&wine_x), black_box(&wine_split.train_y))
                .unwrap();
            model
        })
    });

    let madelon = MadelonDataset::new(200, 5, 15, 20, 2).generate();
    let scaled = Standardizer::fit(&madelon.features)
        .transform(&madelon.features)
        .unwrap();
    group.bench_function("pca_fit_200x40", |b| {
        b.iter(|| {
            let mut pca = Pca::new(5).unwrap();
            pca.fit(black_box(&scaled)).unwrap();
            pca
        })
    });

    let har = HarDataset::new(400, 3).generate();
    let labels: Vec<usize> = har.labels.clone();
    group.bench_function("knn_fit_predict_400x5", |b| {
        b.iter(|| {
            let mut knn = KnnClassifier::paper_default().unwrap();
            knn.fit(black_box(&har.features), black_box(&labels))
                .unwrap();
            knn.predict(&har.features).unwrap()
        })
    });

    group.finish();
}

fn bench_quality_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality_evaluation");
    group.sample_size(10);
    for benchmark in Benchmark::ALL {
        let evaluator = QualityEvaluator::builder(benchmark)
            .samples(160)
            .memory_rows(512)
            .build()
            .unwrap();
        let scheme = Scheme::shuffle32(2).unwrap();
        group.bench_function(format!("fig7_single_run_{}", benchmark.name()), |b| {
            b.iter(|| {
                evaluator
                    .quality_with_faults(black_box(&scheme), black_box(32), 5)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_training, bench_quality_evaluation);
criterion_main!(benches);
