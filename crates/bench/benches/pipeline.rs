//! Criterion benchmark of the parallel fault-injection pipeline: serial vs.
//! multi-worker campaign throughput (samples/sec) at a reduced Fig. 5
//! operating point (16 KB memory, `P_cell = 5·10⁻⁶` — the paper's memory
//! model with a trimmed Monte-Carlo budget so one iteration stays cheap).
//!
//! On a multi-core host the `workers/N` series should scale towards N× the
//! serial throughput; on a single-core host the parallel path only measures
//! the (small) orchestration overhead. Either way the results are
//! bit-identical across all worker counts — that invariant is pinned by the
//! `determinism` integration test, while this bench tracks the speed.

//! Besides the Criterion groups, `bench_worker_scaling_json` measures the
//! fixed worker-count sweep 1/2/4/8 and writes `BENCH_pipeline.json` (path
//! overridable via the `BENCH_PIPELINE_JSON` environment variable) through
//! the in-tree JSON emitter, so thread scaling can be re-measured and
//! tracked on any multi-core host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faultmit_analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_core::Scheme;
use faultmit_memsim::MemoryConfig;
use faultmit_sim::Parallelism;
use std::time::Instant;

/// Reduced Fig. 5 operating point: same geometry and failure counts that
/// dominate the paper's campaign, small enough per-iteration budget for a
/// stable benchmark.
fn operating_point(parallelism: Parallelism) -> MonteCarloEngine {
    let config = MonteCarloConfig::new(MemoryConfig::paper_16kb(), 5e-6)
        .expect("valid paper P_cell")
        .with_samples_per_count(10)
        .with_max_failures(12)
        .with_parallelism(parallelism);
    MonteCarloEngine::new(config)
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let schemes = Scheme::fig5_catalogue();
    let samples_per_run = 12u64 * 10;

    let mut group = c.benchmark_group("pipeline_fig5");
    group.sample_size(10);
    group.throughput(Throughput::Elements(samples_per_run));

    group.bench_function("serial", |b| {
        let engine = operating_point(Parallelism::Serial);
        b.iter(|| engine.run_catalogue(&schemes, 0xF165).unwrap())
    });

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for workers in [2usize, 4, cpus] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let engine = operating_point(Parallelism::threads(workers));
                b.iter(|| engine.run_catalogue(&schemes, 0xF165).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_single_scheme_vs_paired(c: &mut Criterion) {
    // The paired catalogue pass amortises die sampling over all schemes;
    // this quantifies the win over running the catalogue scheme-by-scheme.
    let schemes = Scheme::fig5_catalogue();
    let engine = operating_point(Parallelism::Serial);

    let mut group = c.benchmark_group("paired_vs_sequential");
    group.sample_size(10);

    group.bench_function("paired_catalogue", |b| {
        b.iter(|| engine.run_catalogue(&schemes, 7).unwrap())
    });
    group.bench_function("scheme_by_scheme", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|scheme| engine.run(scheme, 7).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// One row of the `BENCH_pipeline.json` worker-count sweep.
struct WorkerScalingRow {
    workers: usize,
    mean_seconds_per_campaign: f64,
    samples_per_second: f64,
    speedup_vs_serial: f64,
}

impl ToJson for WorkerScalingRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("workers", self.workers.to_json()),
            (
                "mean_seconds_per_campaign",
                self.mean_seconds_per_campaign.to_json(),
            ),
            ("samples_per_second", self.samples_per_second.to_json()),
            ("speedup_vs_serial", self.speedup_vs_serial.to_json()),
        ])
    }
}

/// Times the reduced Fig. 5 campaign at 1/2/4/8 workers and writes the
/// series as `BENCH_pipeline.json` — the ROADMAP's thread-scaling
/// measurement, reproducible on any host.
fn bench_worker_scaling_json(_c: &mut Criterion) {
    const REPS: u32 = 3;
    let schemes = Scheme::fig5_catalogue();
    let samples_per_run = 12u64 * 10;

    let measure = |parallelism: Parallelism| {
        let engine = operating_point(parallelism);
        // One warm-up campaign, then the mean of the timed repetitions.
        engine.run_catalogue(&schemes, 0xF165).unwrap();
        let started = Instant::now();
        for _ in 0..REPS {
            engine.run_catalogue(&schemes, 0xF165).unwrap();
        }
        started.elapsed().as_secs_f64() / f64::from(REPS)
    };

    println!("\n== group: pipeline_worker_scaling (BENCH_pipeline.json) ==");
    let serial_seconds = measure(Parallelism::Serial);
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let seconds = if workers == 1 {
            serial_seconds
        } else {
            measure(Parallelism::threads(workers))
        };
        let row = WorkerScalingRow {
            workers,
            mean_seconds_per_campaign: seconds,
            samples_per_second: samples_per_run as f64 / seconds,
            speedup_vs_serial: serial_seconds / seconds,
        };
        println!(
            "workers/{:<2} {:>10.2} ms/campaign   ({:>8.1} samples/s, {:.2}x vs serial)",
            row.workers,
            row.mean_seconds_per_campaign * 1e3,
            row.samples_per_second,
            row.speedup_vs_serial,
        );
        rows.push(row);
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let document = JsonValue::object([
        ("bench", "pipeline_fig5_worker_scaling".to_json()),
        ("host_cpus", host_cpus.to_json()),
        ("samples_per_campaign", samples_per_run.to_json()),
        ("series", rows.to_json()),
    ]);
    let path =
        std::env::var("BENCH_PIPELINE_JSON").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    match std::fs::write(&path, document.to_pretty_string()) {
        Ok(()) => println!("wrote worker-scaling series to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_campaign_throughput,
    bench_single_scheme_vs_paired,
    bench_worker_scaling_json
);
criterion_main!(benches);
