//! Criterion benchmark of the parallel fault-injection pipeline: serial vs.
//! multi-worker campaign throughput (samples/sec) at a reduced Fig. 5
//! operating point (16 KB memory, `P_cell = 5·10⁻⁶` — the paper's memory
//! model with a trimmed Monte-Carlo budget so one iteration stays cheap).
//!
//! On a multi-core host the `workers/N` series should scale towards N× the
//! serial throughput; on a single-core host the parallel path only measures
//! the (small) orchestration overhead. Either way the results are
//! bit-identical across all worker counts — that invariant is pinned by the
//! `determinism` integration test, while this bench tracks the speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faultmit_analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit_core::Scheme;
use faultmit_memsim::MemoryConfig;
use faultmit_sim::Parallelism;

/// Reduced Fig. 5 operating point: same geometry and failure counts that
/// dominate the paper's campaign, small enough per-iteration budget for a
/// stable benchmark.
fn operating_point(parallelism: Parallelism) -> MonteCarloEngine {
    let config = MonteCarloConfig::new(MemoryConfig::paper_16kb(), 5e-6)
        .expect("valid paper P_cell")
        .with_samples_per_count(10)
        .with_max_failures(12)
        .with_parallelism(parallelism);
    MonteCarloEngine::new(config)
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let schemes = Scheme::fig5_catalogue();
    let samples_per_run = 12u64 * 10;

    let mut group = c.benchmark_group("pipeline_fig5");
    group.sample_size(10);
    group.throughput(Throughput::Elements(samples_per_run));

    group.bench_function("serial", |b| {
        let engine = operating_point(Parallelism::Serial);
        b.iter(|| engine.run_catalogue(&schemes, 0xF165).unwrap())
    });

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for workers in [2usize, 4, cpus] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let engine = operating_point(Parallelism::threads(workers));
                b.iter(|| engine.run_catalogue(&schemes, 0xF165).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_single_scheme_vs_paired(c: &mut Criterion) {
    // The paired catalogue pass amortises die sampling over all schemes;
    // this quantifies the win over running the catalogue scheme-by-scheme.
    let schemes = Scheme::fig5_catalogue();
    let engine = operating_point(Parallelism::Serial);

    let mut group = c.benchmark_group("paired_vs_sequential");
    group.sample_size(10);

    group.bench_function("paired_catalogue", |b| {
        b.iter(|| engine.run_catalogue(&schemes, 7).unwrap())
    });
    group.bench_function("scheme_by_scheme", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|scheme| engine.run(scheme, 7).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_throughput,
    bench_single_scheme_vs_paired
);
criterion_main!(benches);
