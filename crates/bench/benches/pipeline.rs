//! Criterion benchmark of the parallel fault-injection pipeline: serial vs.
//! multi-worker campaign throughput (samples/sec) at a reduced Fig. 5
//! operating point (16 KB memory, `P_cell = 5·10⁻⁶` — the paper's memory
//! model with a trimmed Monte-Carlo budget so one iteration stays cheap).
//!
//! On a multi-core host the `workers/N` series should scale towards N× the
//! serial throughput; on a single-core host the parallel path only measures
//! the (small) orchestration overhead. Either way the results are
//! bit-identical across all worker counts — that invariant is pinned by the
//! `determinism` integration test, while this bench tracks the speed.

//! Besides the Criterion groups, `bench_throughput_json` measures the
//! worker-count sweep 1/2/4/8 plus the kernel-generation comparison
//! (`scalar_btree` → `scalar_flat` → `sparse` → `bitsliced` →
//! `bitsliced256`, plus the density-resolved `auto` row) and writes
//! `BENCH_pipeline.json` (path overridable via the `BENCH_PIPELINE_JSON`
//! environment variable) through the in-tree JSON emitter, so throughput can
//! be re-measured and tracked on any host. Worker counts above the host's
//! CPU count only measure oversubscription noise, so they are skipped by
//! default; pass `--force-worker-sweep` (the vendored harness ignores
//! unknown flags) to measure the full 1/2/4/8 sweep regardless, and read
//! the `host_cpus` stamp inside each JSON section to interpret the rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use faultmit_analysis::{
    block_mse_into, memory_mse_for_data, memory_mse_sparse_with, MonteCarloConfig, MonteCarloEngine,
};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_core::Scheme;
use faultmit_memsim::{
    corrupt_word, DieBlock, FaultKind, FaultKindLaw, FaultMap, ImageSpec, Lane, MemoryConfig,
    SramVddBackend, W256,
};
use faultmit_obs as obs;
use faultmit_sim::{
    Accumulator, Campaign, CampaignConfig, KernelKind, PairedSample, Parallelism, ShardSpec,
};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Reduced Fig. 5 operating point: same geometry and failure counts that
/// dominate the paper's campaign, small enough per-iteration budget for a
/// stable benchmark.
fn operating_point(parallelism: Parallelism) -> MonteCarloEngine {
    let config = MonteCarloConfig::new(MemoryConfig::paper_16kb(), 5e-6)
        .expect("valid paper P_cell")
        .with_samples_per_count(10)
        .with_max_failures(12)
        .with_parallelism(parallelism);
    MonteCarloEngine::new(config)
}

fn bench_campaign_throughput(c: &mut Criterion) {
    let schemes = Scheme::fig5_catalogue();
    let samples_per_run = 12u64 * 10;

    let mut group = c.benchmark_group("pipeline_fig5");
    group.sample_size(10);
    group.throughput(Throughput::Elements(samples_per_run));

    group.bench_function("serial", |b| {
        let engine = operating_point(Parallelism::Serial);
        b.iter(|| engine.run_catalogue(&schemes, 0xF165).unwrap())
    });

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    for workers in [2usize, 4, cpus] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                let engine = operating_point(Parallelism::threads(workers));
                b.iter(|| engine.run_catalogue(&schemes, 0xF165).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_single_scheme_vs_paired(c: &mut Criterion) {
    // The paired catalogue pass amortises die sampling over all schemes;
    // this quantifies the win over running the catalogue scheme-by-scheme.
    let schemes = Scheme::fig5_catalogue();
    let engine = operating_point(Parallelism::Serial);

    let mut group = c.benchmark_group("paired_vs_sequential");
    group.sample_size(10);

    group.bench_function("paired_catalogue", |b| {
        b.iter(|| engine.run_catalogue(&schemes, 7).unwrap())
    });
    group.bench_function("scheme_by_scheme", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|scheme| engine.run(scheme, 7).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// One row of the `BENCH_pipeline.json` worker-count sweep.
struct WorkerScalingRow {
    workers: usize,
    mean_seconds_per_campaign: f64,
    samples_per_second: f64,
    words_per_second: f64,
    speedup_vs_serial: f64,
}

impl ToJson for WorkerScalingRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("workers", self.workers.to_json()),
            (
                "mean_seconds_per_campaign",
                self.mean_seconds_per_campaign.to_json(),
            ),
            ("samples_per_second", self.samples_per_second.to_json()),
            ("words_per_second", self.words_per_second.to_json()),
            ("speedup_vs_serial", self.speedup_vs_serial.to_json()),
        ])
    }
}

/// One row of the kernel-generation comparison (`speedup_vs_scalar` is
/// relative to the `scalar_btree` baseline — the pre-flat-map kernel).
struct KernelRow {
    config: &'static str,
    kernel: &'static str,
    mean_seconds_per_campaign: f64,
    samples_per_second: f64,
    words_per_second: f64,
    speedup_vs_scalar: f64,
    /// Fraction of wide-generation lane steps with the lane still live
    /// (from the per-row metrics delta; absent for kernels that never
    /// enter the wide path).
    widegen_lane_utilisation: Option<f64>,
    /// Fraction of observed rows that fell back off the bit-sliced block
    /// path (absent for the scalar/sparse kernels, which have no block
    /// path to fall back from).
    observe_fallback_rate: Option<f64>,
}

impl ToJson for KernelRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("config", self.config.to_json()),
            ("kernel", self.kernel.to_json()),
            (
                "mean_seconds_per_campaign",
                self.mean_seconds_per_campaign.to_json(),
            ),
            ("samples_per_second", self.samples_per_second.to_json()),
            ("words_per_second", self.words_per_second.to_json()),
            ("speedup_vs_scalar", self.speedup_vs_scalar.to_json()),
            (
                "widegen_lane_utilisation",
                self.widegen_lane_utilisation.to_json(),
            ),
            (
                "observe_fallback_rate",
                self.observe_fallback_rate.to_json(),
            ),
        ])
    }
}

/// Minimal accumulator for kernel timing: folds every metric into one sum
/// (no per-sample allocation, and the sum doubles as an equality witness
/// that both kernels computed the same MSEs).
#[derive(Default)]
struct SumMetrics {
    total: f64,
    samples: u64,
}

impl Accumulator for SumMetrics {
    fn record(&mut self, sample: &PairedSample) {
        self.samples += 1;
        for metric in &sample.metrics {
            self.total += metric;
        }
    }

    fn merge(&mut self, other: Self) {
        self.total += other.total;
        self.samples += other.samples;
    }
}

/// Seed of the kernel-comparison campaigns (arbitrary fixed constant).
const KERNEL_SEED: u64 = 0x5E1F_F165;

/// The pre-flat-map fault-map layout: per-die nested B-trees, rebuilt from
/// each sampled flat map so the RNG schedule (and therefore every fault
/// population) stays authoritative. The rebuild mirrors the tree
/// construction the historical sampler performed during die generation.
#[derive(Default)]
struct LegacyDie {
    by_row: BTreeMap<usize, BTreeMap<usize, FaultKind>>,
    rows: usize,
}

impl LegacyDie {
    fn rebuild(&mut self, map: &FaultMap) {
        self.by_row.clear();
        self.rows = map.config().rows();
        for fault in map.iter() {
            self.by_row
                .entry(fault.row)
                .or_default()
                .insert(fault.col, fault.kind);
        }
    }

    /// Historical `FaultMap::faulty_columns`: a fresh `Vec` per call.
    fn faulty_columns(&self, row: usize) -> Vec<usize> {
        self.by_row
            .get(&row)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Historical `Scheme::corrupt`: re-walks the columns and performs a
    /// tree lookup per fault.
    fn corrupt(&self, row: usize, stored: u64) -> u64 {
        let mut observed = stored;
        for col in self.faulty_columns(row) {
            if let Some(kind) = self.by_row.get(&row).and_then(|m| m.get(&col)).copied() {
                observed = corrupt_word(observed, col, kind);
            }
        }
        observed
    }
}

/// Historical `word_squared_error`: `4^b` via `powi` (the flat kernels use a
/// precomputed table that is bit-identical — pinned by a unit test).
fn legacy_word_squared_error(written: u64, observed: u64) -> f64 {
    let mut diff = written ^ observed;
    let mut total = 0.0;
    while diff != 0 {
        let bit = diff.trailing_zeros();
        total += 4.0_f64.powi(bit as i32);
        diff &= diff - 1;
    }
    total
}

/// Historical `rotate_right`: reduces the shift with an integer modulo
/// (today's shifter skips the division for in-range shifts).
fn legacy_rotate_right(value: u64, shift: usize, width: usize) -> u64 {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let shift = shift % width;
    if shift == 0 {
        return value;
    }
    ((value >> shift) | (value << (width - shift))) & mask
}

fn legacy_rotate_left(value: u64, shift: usize, width: usize) -> u64 {
    let shift = shift % width;
    if shift == 0 {
        return value;
    }
    legacy_rotate_right(value, width - shift, width)
}

/// Historical `FmLut::choose_shift` + `shift_amount`: per-candidate costs via
/// `/`, `%` and `pow` (today's versions exploit the power-of-two widths).
fn legacy_shift_for(geometry: &faultmit_core::SegmentGeometry, columns: &[usize]) -> usize {
    let word_bits = geometry.word_bits();
    let segment_bits = geometry.segment_bits();
    let x_fm = match columns {
        [] => 0,
        [single] => *single / segment_bits,
        _ => {
            let mut best_index = 0usize;
            let mut best_cost = u128::MAX;
            for candidate in 0..geometry.segment_count() {
                let shift = candidate * segment_bits;
                let cost: u128 = columns
                    .iter()
                    .map(|&col| {
                        let data_bit = (col + word_bits - shift) % word_bits;
                        (1u128 << data_bit).pow(2)
                    })
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best_index = candidate;
                }
            }
            best_index
        }
    };
    (segment_bits * (geometry.segment_count() - x_fm)) % word_bits
}

/// Historical `Scheme::observe` against the nested-tree layout (value only —
/// the MSE kernel never reads the reliability flag).
fn legacy_observe(scheme: &Scheme, die: &LegacyDie, row: usize, written: u64) -> u64 {
    let columns = die.faulty_columns(row);
    if columns.is_empty() {
        return written;
    }
    match scheme {
        Scheme::Unprotected { .. } => die.corrupt(row, written),
        Scheme::Secded { .. } => {
            let corrupted = die.corrupt(row, written);
            if (corrupted ^ written).count_ones() <= 1 {
                written
            } else {
                corrupted
            }
        }
        Scheme::PriorityEcc {
            word_bits,
            protected_bits,
        } => {
            let corrupted = die.corrupt(row, written);
            let unprotected_bits = word_bits - protected_bits;
            let msb_mask = if *word_bits == 64 && unprotected_bits == 0 {
                u64::MAX
            } else {
                (((1u64 << protected_bits) - 1) << unprotected_bits) & ((1u64 << word_bits) - 1)
            };
            if ((corrupted ^ written) & msb_mask).count_ones() <= 1 {
                (written & msb_mask) | (corrupted & !msb_mask)
            } else {
                corrupted
            }
        }
        Scheme::BitShuffle(geometry) => {
            let shift = legacy_shift_for(geometry, &columns);
            let stored = legacy_rotate_right(written, shift, geometry.word_bits());
            let corrupted = die.corrupt(row, stored);
            legacy_rotate_left(corrupted, shift, geometry.word_bits())
        }
    }
}

/// Historical MSE kernel over the nested-tree layout.
fn legacy_memory_mse<W: Fn(usize) -> u64>(scheme: &Scheme, die: &LegacyDie, written: &W) -> f64 {
    let rows = die.rows as f64;
    let total: f64 = die
        .by_row
        .keys()
        .map(|&row| {
            let data = written(row);
            legacy_word_squared_error(data, legacy_observe(scheme, die, row, data))
        })
        .sum();
    total / rows
}

/// Times the pre-PR kernel: per-die nested B-trees and the allocating
/// `observe` path. Die sampling still runs through the (flat) campaign
/// sampler — the RNG authority — and the nested trees are rebuilt once per
/// die inside the evaluation closure, standing in for the tree construction
/// the historical sampler did at generation time.
fn time_legacy_campaign<W>(
    config: CampaignConfig<SramVddBackend>,
    schemes: &[Scheme],
    written: W,
    reps: u32,
) -> (f64, f64, u64)
where
    W: Fn(usize) -> u64 + Sync,
{
    struct LegacyState {
        die: LegacyDie,
        calls: usize,
    }
    let state = Mutex::new(LegacyState {
        die: LegacyDie::default(),
        calls: 0,
    });
    let n_schemes = schemes.len();
    time_campaign(
        config,
        schemes,
        |scheme, map| {
            // The campaign evaluates all schemes of the catalogue against
            // each die in order (serial parallelism), so every n-th call
            // marks a fresh die.
            let mut state = state.lock().unwrap();
            if state.calls.is_multiple_of(n_schemes) {
                state.die.rebuild(map);
            }
            state.calls += 1;
            legacy_memory_mse(scheme, &state.die, &written)
        },
        reps,
    )
}

/// Times `reps` runs of a single-threaded campaign and returns
/// `(mean seconds per campaign, metric-sum witness, samples per campaign)`.
///
/// The metric sum is accumulated identically for every kernel, so matching
/// witnesses prove the timed kernels computed the same MSEs.
fn time_campaign<F>(
    config: CampaignConfig<SramVddBackend>,
    schemes: &[Scheme],
    evaluate: F,
    reps: u32,
) -> (f64, f64, u64)
where
    F: Fn(&Scheme, &FaultMap) -> f64 + Sync,
{
    let campaign = Campaign::new(config);
    // One warm-up campaign, then the mean of the timed repetitions.
    campaign
        .run(schemes, KERNEL_SEED, &evaluate, SumMetrics::default)
        .unwrap();
    let started = Instant::now();
    let mut witness = 0.0;
    let mut samples = 0;
    for _ in 0..reps {
        let acc = campaign
            .run(schemes, KERNEL_SEED, &evaluate, SumMetrics::default)
            .unwrap();
        witness = acc.total;
        samples = acc.samples;
    }
    (
        started.elapsed().as_secs_f64() / f64::from(reps),
        witness,
        samples,
    )
}

/// Times `reps` runs of the bit-sliced block scheduler (`L::LANES`-die
/// [`DieBlock`]s with a scalar tail) and returns the same
/// `(mean seconds, witness, samples)` triple as [`time_campaign`], so the
/// witness proves the lane kernels reproduced the scalar MSEs bit for bit.
fn time_campaign_blocks<L, F, G>(
    config: CampaignConfig<SramVddBackend>,
    schemes: &[Scheme],
    evaluate_sample: F,
    evaluate_block: G,
    reps: u32,
) -> (f64, f64, u64)
where
    L: Lane,
    F: Fn(&Scheme, &FaultMap) -> f64 + Sync,
    G: Fn(&Scheme, &DieBlock<'_, L>, &mut [f64]) + Sync,
{
    let campaign = Campaign::new(config);
    let run = || {
        campaign
            .run_shard_blocks(
                schemes,
                KERNEL_SEED,
                ShardSpec::solo(),
                &evaluate_sample,
                &evaluate_block,
                SumMetrics::default,
            )
            .unwrap()
    };
    // One warm-up campaign, then the mean of the timed repetitions.
    run();
    let started = Instant::now();
    let mut witness = 0.0;
    let mut samples = 0;
    for _ in 0..reps {
        let acc = run();
        witness = acc.total;
        samples = acc.samples;
    }
    (
        started.elapsed().as_secs_f64() / f64::from(reps),
        witness,
        samples,
    )
}

/// Times every kernel generation at one operating point and appends the
/// rows, with each witness sum cross-checked bit for bit against the
/// `scalar_btree` baseline.
///
/// `config(scratch_reuse)` builds the point's campaign configuration and
/// `written(row)` supplies its stored words, so each generation times the
/// identical campaign. The `auto` row runs the kernel the density policy of
/// [`KernelKind::resolve`] picks for this configuration — resolution
/// happens once per campaign, before any sampling — and its `kernel` stamp
/// records the resolved choice (`auto:sparse` / `auto:bitsliced256`), the
/// same telemetry the sharded CLI writes into checkpoints.
fn push_point<W>(
    rows: &mut Vec<KernelRow>,
    label: &'static str,
    memory: MemoryConfig,
    config: &dyn Fn(bool) -> CampaignConfig<SramVddBackend>,
    schemes: &[Scheme],
    written: W,
    reps: u32,
) where
    W: Fn(usize) -> u64 + Sync,
{
    let words: Vec<u64> = (0..memory.rows()).map(&written).collect();
    let words_per_sample = memory.rows() as f64;

    let time_sparse = || {
        time_campaign(
            config(true),
            schemes,
            |scheme, map| memory_mse_sparse_with(scheme, map, &written),
            reps,
        )
    };
    let time_blocks_narrow = || {
        time_campaign_blocks(
            config(true),
            schemes,
            |scheme, map| memory_mse_sparse_with(scheme, map, &written),
            |scheme, block: &DieBlock<'_>, out: &mut [f64]| {
                block_mse_into(scheme, block, &written, out);
            },
            reps,
        )
    };
    let time_blocks_wide = || {
        time_campaign_blocks(
            config(true),
            schemes,
            |scheme, map| memory_mse_sparse_with(scheme, map, &written),
            |scheme, block: &DieBlock<'_, W256>, out: &mut [f64]| {
                block_mse_into(scheme, block, &written, out);
            },
            reps,
        )
    };

    // Per-row metrics delta: when the bench runner installed a recorder,
    // each kernel's timed window is bracketed by snapshots so the lane
    // utilisation and fallback rates belong to that kernel alone.
    let timed = |run: &dyn Fn() -> (f64, f64, u64)| {
        let recorder = obs::current();
        let before = recorder.as_ref().map(|r| r.snapshot()).unwrap_or_default();
        let triple = run();
        let delta = recorder
            .map(|r| r.snapshot().since(&before))
            .unwrap_or_default();
        (triple, delta)
    };

    let (legacy, legacy_metrics) =
        timed(&|| time_legacy_campaign(config(false), schemes, &written, reps));
    let (scalar, scalar_metrics) = timed(&|| {
        time_campaign(
            config(false),
            schemes,
            |scheme, map| memory_mse_for_data(scheme, map, &words),
            reps,
        )
    });
    let (sparse, sparse_metrics) = timed(&time_sparse);
    let (bitsliced, bitsliced_metrics) = timed(&time_blocks_narrow);
    let (bitsliced256, bitsliced256_metrics) = timed(&time_blocks_wide);
    let resolved = KernelKind::Auto.resolve(
        config(true).expected_faults_per_die().unwrap(),
        memory.rows(),
    );
    // The auto row re-times the resolved kernel end to end, so any gap
    // between `auto` and its fixed twin is pure measurement noise.
    let (auto_name, (auto, auto_metrics)) = match resolved {
        KernelKind::Bitsliced256 => ("auto:bitsliced256", timed(&time_blocks_wide)),
        _ => ("auto:sparse", timed(&time_sparse)),
    };

    for (kernel, (seconds, witness, samples), metrics) in [
        ("scalar_btree", legacy, legacy_metrics),
        ("scalar_flat", scalar, scalar_metrics),
        ("sparse", sparse, sparse_metrics),
        ("bitsliced", bitsliced, bitsliced_metrics),
        ("bitsliced256", bitsliced256, bitsliced256_metrics),
        (auto_name, auto, auto_metrics),
    ] {
        assert_eq!(
            legacy.1.to_bits(),
            witness.to_bits(),
            "{label}: scalar_btree and {kernel} kernels disagree on the MSE sum"
        );
        rows.push(KernelRow {
            config: label,
            kernel,
            mean_seconds_per_campaign: seconds,
            samples_per_second: samples as f64 / seconds,
            words_per_second: samples as f64 * words_per_sample / seconds,
            speedup_vs_scalar: legacy.0 / seconds,
            widegen_lane_utilisation: metrics.wide_lane_utilisation(),
            observe_fallback_rate: metrics.observe_fallback_rate(),
        });
    }
}

/// Measures six generations of the evaluation kernel at three
/// single-threaded operating points:
///
/// * `scalar_btree` — the pre-PR baseline: per-die nested
///   `BTreeMap<row, BTreeMap<col, kind>>` storage and the allocating
///   `observe` path (`faulty_columns` vectors, per-fault tree lookups,
///   `powi`);
/// * `scalar_flat` — the flat sorted fault map with fresh per-die
///   allocations and the generic `observe` path over dense image vectors;
/// * `sparse` — the event-driven kernel: reusable `DieScratch` arena,
///   `observe_sparse` row slices, per-faulty-row image gather;
/// * `bitsliced` — the lane-parallel kernel: 64 dies transposed into
///   `u64` lanes per `DieBlock`, `observe_block` scheme transforms and the
///   `block_mse_into` reduction, with a scalar (`sparse`) tail for the
///   final partial block;
/// * `bitsliced256` — the same pipeline at the 256-die `W256` lane width
///   (four `u64` words per lane, element-wise ops the compiler
///   autovectorises);
/// * `auto` — the density-adaptive kernel, stamped with what it resolved
///   to at this operating point.
///
/// Operating points:
///
/// * `fig5`: the paper's 16 KB array at `P_cell = 1e-4` (Fig. 9's matched
///   density on the Fig. 5 axis), all-zeros background, Fig. 5 catalogue;
/// * `fig9`: same array and density with the uniform-random data image and
///   the decay-style stuck-at law — the data-dependent path;
/// * `dense_ecc`: the deep-voltage-scaling end of the Fig. 5 axis — 8192
///   faults per die (`P_cell = 1/16`), benched on the ECC design space
///   (unprotected, the P-ECC protected-width sweep `4, 8, …, 28`, full
///   SECDED) whose block paths are fully lane-parallel. Here ~16 of a wide
///   block's 256 dies share every faulty *cell*, so one lane operation
///   does the work the sparse kernel repeats per die.
fn kernel_rows() -> Vec<KernelRow> {
    const REPS: u32 = 5;
    let memory = MemoryConfig::paper_16kb();
    let schemes = Scheme::fig5_catalogue();

    let config = |scratch_reuse: bool, law: FaultKindLaw| {
        let backend = SramVddBackend::with_p_cell(memory, 1e-4)
            .unwrap()
            .with_kind_law(law)
            .unwrap();
        CampaignConfig::for_backend(backend)
            .unwrap()
            .with_samples_per_count(10)
            .with_max_failures(24)
            .with_parallelism(Parallelism::Serial)
            // Blocks are grouped within chunks, so the default 32-sample
            // chunk would cap the bit-sliced kernel at half lane occupancy;
            // 64 gives full blocks (results are chunk-size-independent —
            // pinned by `chunk_size_does_not_change_results`). The scalar
            // kernels are insensitive to this knob.
            .with_chunk_size(64)
            .with_scratch_reuse(scratch_reuse)
    };
    let stuck = FaultKindLaw::AsymmetricStuckAt {
        p_stuck_at_zero: 0.9,
    };
    let image = ImageSpec::UniformRandom { seed: 0xF169_DA7A }
        .try_materialise(memory)
        .unwrap();
    let dense = image.materialise(memory.rows());

    let mut rows = Vec::new();
    push_point(
        &mut rows,
        "fig5_p1e-4",
        memory,
        &|reuse| config(reuse, FaultKindLaw::AlwaysFlip),
        &schemes,
        |_| 0,
        REPS,
    );
    push_point(
        &mut rows,
        "fig9_random_stuck",
        memory,
        &|reuse| config(reuse, stuck),
        &schemes,
        |row| dense[row],
        REPS,
    );

    // Deep-scaling density: exactly 8192 faults in every die (one cell in
    // sixteen), 256 samples in one chunk so the wide kernel packs one full
    // 256-die block (the narrow kernel packs four 64-die blocks). Every
    // faulty cell is shared by ~4 of any 64 dies (~16 of 256), which is the
    // regime the transposed lanes were built for. The shuffle schemes'
    // FM-LUT vote falls back to the scalar path for multi-fault dies
    // (dominant at this density), so this point measures the ECC design
    // space instead: the P-ECC protected-width sweep between the
    // unprotected and full-SECDED endpoints, whose block paths stay
    // lane-parallel at any density.
    let ecc_schemes: Vec<Scheme> = std::iter::once(Scheme::unprotected32())
        .chain((1..=7).map(|i| Scheme::PriorityEcc {
            word_bits: 32,
            protected_bits: 4 * i,
        }))
        .chain(std::iter::once(Scheme::secded32()))
        .collect();
    let cells = (memory.rows() * 32) as f64;
    let dense_config = |scratch_reuse: bool| {
        let backend = SramVddBackend::with_p_cell(memory, 8192.0 / cells).unwrap();
        CampaignConfig::for_backend(backend)
            .unwrap()
            .with_samples_per_count(256)
            .with_exact_failures(8192)
            .with_parallelism(Parallelism::Serial)
            .with_chunk_size(256)
            .with_scratch_reuse(scratch_reuse)
    };
    push_point(
        &mut rows,
        "dense_ecc_p6.3e-2",
        memory,
        &dense_config,
        &ecc_schemes,
        |_| 0,
        REPS,
    );
    rows
}

/// Times the reduced Fig. 5 campaign at 1/2/4/8 workers plus the
/// kernel-generation comparison and writes both series as
/// `BENCH_pipeline.json` — the ROADMAP's throughput baseline, reproducible
/// on any host.
///
/// Worker counts above `host_cpus` are skipped by default (they only
/// measure oversubscription, not scaling); `--force-worker-sweep` restores
/// the full fixed sweep so hosts of different widths can be compared
/// row-for-row.
fn bench_throughput_json(_c: &mut Criterion) {
    const REPS: u32 = 3;
    let schemes = Scheme::fig5_catalogue();
    let samples_per_run = 12u64 * 10;
    let words_per_sample = MemoryConfig::paper_16kb().rows() as f64;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let force_sweep = std::env::args().any(|arg| arg == "--force-worker-sweep");

    let measure = |parallelism: Parallelism| {
        let engine = operating_point(parallelism);
        // One warm-up campaign, then the mean of the timed repetitions.
        engine.run_catalogue(&schemes, 0xF165).unwrap();
        let started = Instant::now();
        for _ in 0..REPS {
            engine.run_catalogue(&schemes, 0xF165).unwrap();
        }
        started.elapsed().as_secs_f64() / f64::from(REPS)
    };

    // One recorder spans the whole bench: the kernel rows bracket their own
    // windows with snapshot deltas, and the final aggregate snapshot is
    // written next to the throughput series.
    let recorder = std::sync::Arc::new(obs::Recorder::new());
    let _metrics_guard = obs::install(&recorder);

    println!("\n== group: pipeline_worker_scaling (BENCH_pipeline.json) ==");
    let serial_seconds = measure(Parallelism::Serial);
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        if workers > host_cpus && !force_sweep {
            println!(
                "workers/{workers:<2} skipped (host has {host_cpus} CPU(s); \
                 pass --force-worker-sweep to measure oversubscription)"
            );
            continue;
        }
        let seconds = if workers == 1 {
            serial_seconds
        } else {
            measure(Parallelism::threads(workers))
        };
        let row = WorkerScalingRow {
            workers,
            mean_seconds_per_campaign: seconds,
            samples_per_second: samples_per_run as f64 / seconds,
            words_per_second: samples_per_run as f64 * words_per_sample / seconds,
            speedup_vs_serial: serial_seconds / seconds,
        };
        println!(
            "workers/{:<2} {:>10.2} ms/campaign   ({:>8.1} samples/s, {:.3e} words/s, {:.2}x vs serial)",
            row.workers,
            row.mean_seconds_per_campaign * 1e3,
            row.samples_per_second,
            row.words_per_second,
            row.speedup_vs_serial,
        );
        rows.push(row);
    }

    println!("\n== group: pipeline_kernels (BENCH_pipeline.json) ==");
    let kernels = kernel_rows();
    for row in &kernels {
        // The counter-derived rates print next to the throughput numbers:
        // lane utilisation says how full the wide-generation lanes ran,
        // the fallback rate how often observation left the block path.
        let mut rates = String::new();
        if let Some(utilisation) = row.widegen_lane_utilisation {
            rates.push_str(&format!(", lanes {:.0}%", 100.0 * utilisation));
        }
        if let Some(fallback) = row.observe_fallback_rate {
            rates.push_str(&format!(", fallback {:.1}%", 100.0 * fallback));
        }
        println!(
            "{:<18} {:<6} {:>10.2} ms/campaign   ({:>8.1} samples/s, {:.3e} words/s, {:.2}x vs scalar{rates})",
            row.config,
            row.kernel,
            row.mean_seconds_per_campaign * 1e3,
            row.samples_per_second,
            row.words_per_second,
            row.speedup_vs_scalar,
        );
    }

    // Each section carries its own `host_cpus` stamp so a row set stays
    // interpretable when sections from different hosts are compared side by
    // side (and so the worker sweep records why rows above the CPU count
    // are absent unless the sweep was forced).
    let mut document = JsonValue::object([
        ("bench", "pipeline_throughput".to_json()),
        ("host_cpus", host_cpus.to_json()),
        ("samples_per_campaign", samples_per_run.to_json()),
        (
            "worker_scaling",
            JsonValue::object([
                ("host_cpus", host_cpus.to_json()),
                ("forced_full_sweep", force_sweep.to_json()),
                ("rows", rows.to_json()),
            ]),
        ),
        (
            "kernels",
            JsonValue::object([
                ("host_cpus", host_cpus.to_json()),
                ("rows", kernels.to_json()),
            ]),
        ),
        (
            "metrics",
            faultmit_bench::metrics::snapshot_to_json(&recorder.snapshot()),
        ),
    ]);
    let path =
        std::env::var("BENCH_PIPELINE_JSON").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    // The datapath bench owns the `"datapath"` section of the same file;
    // carry it over so whichever bench ran last doesn't discard the other's
    // series.
    let datapath = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok())
        .and_then(|existing| existing.get("datapath").cloned());
    if let (Some(section), JsonValue::Object(fields)) = (datapath, &mut document) {
        fields.push(("datapath".to_owned(), section));
    }
    match std::fs::write(&path, document.to_pretty_string()) {
        Ok(()) => println!("wrote throughput series to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_campaign_throughput,
    bench_single_scheme_vs_paired,
    bench_throughput_json
);
criterion_main!(benches);
