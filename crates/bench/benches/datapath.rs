//! Criterion micro-benchmarks of the protection-scheme datapaths: barrel
//! shifter rotation, Hamming SECDED encode/decode, P-ECC decode, the
//! bit-shuffling write/read path, the March BIST, and the two halves of the
//! Monte-Carlo inner loop (die generation vs. catalogue evaluation) timed
//! separately. These quantify the software-simulation cost backing the §5.1
//! overhead discussion and show where each campaign millisecond goes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use faultmit_analysis::memory_mse_sparse;
use faultmit_core::{rotate_left, rotate_right, Scheme, SegmentGeometry, ShuffledMemory};
use faultmit_ecc::{HammingSecded, PriorityEcc, SecdedCode};
use faultmit_memsim::{
    DieScratch, Fault, FaultMap, MarchBist, MemoryConfig, SramArray, SramVddBackend, StreamSeeder,
};

fn bench_shifter(c: &mut Criterion) {
    let mut group = c.benchmark_group("shifter");
    group.bench_function("rotate_right_32", |b| {
        b.iter(|| rotate_right(black_box(0xDEAD_BEEF), black_box(13), 32))
    });
    group.bench_function("rotate_round_trip_32", |b| {
        b.iter(|| {
            let stored = rotate_right(black_box(0xDEAD_BEEF), black_box(29), 32);
            rotate_left(stored, 29, 32)
        })
    });
    group.finish();
}

fn bench_ecc_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    let h39 = HammingSecded::h39_32();
    let h22 = HammingSecded::h22_16();
    let pecc = PriorityEcc::paper_32bit().unwrap();
    let cw39 = h39.encode(0x1234_5678).unwrap();
    let cw22 = h22.encode(0x5678).unwrap();
    let cw_pecc = pecc.encode(0x1234_5678).unwrap();

    group.bench_function("h39_32_encode", |b| {
        b.iter(|| h39.encode(black_box(0x1234_5678)).unwrap())
    });
    group.bench_function("h39_32_decode_clean", |b| {
        b.iter(|| h39.decode(black_box(cw39)).unwrap())
    });
    group.bench_function("h39_32_decode_corrupted", |b| {
        b.iter(|| h39.decode(black_box(cw39 ^ (1 << 17))).unwrap())
    });
    group.bench_function("h22_16_decode_clean", |b| {
        b.iter(|| h22.decode(black_box(cw22)).unwrap())
    });
    group.bench_function("pecc_decode_clean", |b| {
        b.iter(|| pecc.decode(black_box(cw_pecc)).unwrap())
    });
    group.finish();
}

fn bench_shuffled_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffled_memory");
    let config = MemoryConfig::new(1024, 32).unwrap();
    let faults = FaultMap::from_faults(
        config,
        (0..64).map(|i| Fault::bit_flip(i * 16, (i * 7) % 32)),
    )
    .unwrap();

    for n_fm in [1usize, 3, 5] {
        let geometry = SegmentGeometry::new(32, n_fm).unwrap();
        let mut memory = ShuffledMemory::from_fault_map(geometry, faults.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("write_read", format!("nFM={n_fm}")),
            &n_fm,
            |b, _| {
                b.iter(|| {
                    memory.write(black_box(16), black_box(0xCAFE_BABE)).unwrap();
                    memory.read(black_box(16)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_bist(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist");
    group.sample_size(20);
    for rows in [256usize, 1024] {
        let config = MemoryConfig::new(rows, 32).unwrap();
        let faults = FaultMap::from_faults(
            config,
            [Fault::bit_flip(3, 31), Fault::stuck_at_one(rows / 2, 5)],
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("march_c_minus", rows), &rows, |b, _| {
            b.iter(|| {
                let mut array = SramArray::with_faults(config, faults.clone());
                MarchBist::new().run(&mut array).unwrap()
            })
        });
    }
    group.finish();
}

/// The Monte-Carlo inner loop, split into its two halves so regressions can
/// be attributed: arena-backed die generation alone, and sparse catalogue
/// evaluation alone over a fixed die (12 faults — the mean failure count of
/// the kernel bench's `P_cell = 1e-4` operating point on the 16 KB array).
fn bench_die_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("die_pipeline");
    let memory = MemoryConfig::paper_16kb();
    let backend = SramVddBackend::with_p_cell(memory, 1e-4).unwrap();
    let seeder = StreamSeeder::new(0xD1E5);

    group.bench_function("generate_die_n12", |b| {
        let mut scratch = DieScratch::new(memory);
        let mut sample = 0u64;
        b.iter(|| {
            let mut rng = seeder.rng_for_sample(sample);
            sample = sample.wrapping_add(1);
            scratch.generate(&backend, &mut rng, black_box(12)).unwrap();
            scratch.map().fault_count()
        })
    });

    let schemes = Scheme::fig5_catalogue();
    let mut scratch = DieScratch::new(memory);
    let mut rng = seeder.rng_for_sample(0);
    scratch.generate(&backend, &mut rng, 12).unwrap();
    let map = scratch.map();
    group.bench_function("evaluate_catalogue_n12", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|scheme| memory_mse_sparse(scheme, black_box(map)))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_shifter,
    bench_ecc_codecs,
    bench_shuffled_memory,
    bench_bist,
    bench_die_pipeline
);
criterion_main!(benches);
