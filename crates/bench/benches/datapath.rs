//! Criterion micro-benchmarks of the protection-scheme datapaths: barrel
//! shifter rotation, Hamming SECDED encode/decode, P-ECC decode, the
//! bit-shuffling write/read path, the March BIST, and the two halves of the
//! Monte-Carlo inner loop (die generation vs. catalogue evaluation) timed
//! separately. These quantify the software-simulation cost backing the §5.1
//! overhead discussion and show where each campaign millisecond goes.
//!
//! Besides the Criterion groups, `bench_datapath_json` measures the
//! generation-vs-evaluation split in campaign units (dies/s, single
//! thread): per-backend block generation through the scalar per-die RNG
//! path and the lane-interleaved wide path, plus fig5-catalogue evaluation
//! over a fixed die. The rows are merged into `BENCH_pipeline.json` (path
//! overridable via the `BENCH_PIPELINE_JSON` environment variable) as a
//! `"datapath"` section, preserving the sections the pipeline bench wrote.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use faultmit_analysis::memory_mse_sparse;
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_core::{rotate_left, rotate_right, Scheme, SegmentGeometry, ShuffledMemory};
use faultmit_ecc::{HammingSecded, PriorityEcc, SecdedCode};
use faultmit_memsim::{
    Backend, BackendKind, BlockScratch, DieScratch, Fault, FaultMap, Lane, MarchBist, MemoryConfig,
    PlannedSample, SramArray, SramVddBackend, StreamSeeder, W256,
};
use faultmit_obs as obs;
use std::time::Instant;

fn bench_shifter(c: &mut Criterion) {
    let mut group = c.benchmark_group("shifter");
    group.bench_function("rotate_right_32", |b| {
        b.iter(|| rotate_right(black_box(0xDEAD_BEEF), black_box(13), 32))
    });
    group.bench_function("rotate_round_trip_32", |b| {
        b.iter(|| {
            let stored = rotate_right(black_box(0xDEAD_BEEF), black_box(29), 32);
            rotate_left(stored, 29, 32)
        })
    });
    group.finish();
}

fn bench_ecc_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc");
    let h39 = HammingSecded::h39_32();
    let h22 = HammingSecded::h22_16();
    let pecc = PriorityEcc::paper_32bit().unwrap();
    let cw39 = h39.encode(0x1234_5678).unwrap();
    let cw22 = h22.encode(0x5678).unwrap();
    let cw_pecc = pecc.encode(0x1234_5678).unwrap();

    group.bench_function("h39_32_encode", |b| {
        b.iter(|| h39.encode(black_box(0x1234_5678)).unwrap())
    });
    group.bench_function("h39_32_decode_clean", |b| {
        b.iter(|| h39.decode(black_box(cw39)).unwrap())
    });
    group.bench_function("h39_32_decode_corrupted", |b| {
        b.iter(|| h39.decode(black_box(cw39 ^ (1 << 17))).unwrap())
    });
    group.bench_function("h22_16_decode_clean", |b| {
        b.iter(|| h22.decode(black_box(cw22)).unwrap())
    });
    group.bench_function("pecc_decode_clean", |b| {
        b.iter(|| pecc.decode(black_box(cw_pecc)).unwrap())
    });
    group.finish();
}

fn bench_shuffled_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("shuffled_memory");
    let config = MemoryConfig::new(1024, 32).unwrap();
    let faults = FaultMap::from_faults(
        config,
        (0..64).map(|i| Fault::bit_flip(i * 16, (i * 7) % 32)),
    )
    .unwrap();

    for n_fm in [1usize, 3, 5] {
        let geometry = SegmentGeometry::new(32, n_fm).unwrap();
        let mut memory = ShuffledMemory::from_fault_map(geometry, faults.clone()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("write_read", format!("nFM={n_fm}")),
            &n_fm,
            |b, _| {
                b.iter(|| {
                    memory.write(black_box(16), black_box(0xCAFE_BABE)).unwrap();
                    memory.read(black_box(16)).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_bist(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist");
    group.sample_size(20);
    for rows in [256usize, 1024] {
        let config = MemoryConfig::new(rows, 32).unwrap();
        let faults = FaultMap::from_faults(
            config,
            [Fault::bit_flip(3, 31), Fault::stuck_at_one(rows / 2, 5)],
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("march_c_minus", rows), &rows, |b, _| {
            b.iter(|| {
                let mut array = SramArray::with_faults(config, faults.clone());
                MarchBist::new().run(&mut array).unwrap()
            })
        });
    }
    group.finish();
}

/// The Monte-Carlo inner loop, split into its two halves so regressions can
/// be attributed: arena-backed die generation alone, and sparse catalogue
/// evaluation alone over a fixed die (12 faults — the mean failure count of
/// the kernel bench's `P_cell = 1e-4` operating point on the 16 KB array).
fn bench_die_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("die_pipeline");
    let memory = MemoryConfig::paper_16kb();
    let backend = SramVddBackend::with_p_cell(memory, 1e-4).unwrap();
    let seeder = StreamSeeder::new(0xD1E5);

    group.bench_function("generate_die_n12", |b| {
        let mut scratch = DieScratch::new(memory);
        let mut sample = 0u64;
        b.iter(|| {
            let mut rng = seeder.rng_for_sample(sample);
            sample = sample.wrapping_add(1);
            scratch.generate(&backend, &mut rng, black_box(12)).unwrap();
            scratch.map().fault_count()
        })
    });

    let schemes = Scheme::fig5_catalogue();
    let mut scratch = DieScratch::new(memory);
    let mut rng = seeder.rng_for_sample(0);
    scratch.generate(&backend, &mut rng, 12).unwrap();
    let map = scratch.map();
    group.bench_function("evaluate_catalogue_n12", |b| {
        b.iter(|| {
            schemes
                .iter()
                .map(|scheme| memory_mse_sparse(scheme, black_box(map)))
                .sum::<f64>()
        })
    });
    group.finish();
}

/// One generation row of the `BENCH_pipeline.json` `"datapath"` section:
/// how many dies per second one thread can *generate* (fault sampling
/// only, no evaluation) through the named path.
struct GenerationRow {
    config: &'static str,
    backend: String,
    path: &'static str,
    faults_per_die: u64,
    dies_per_second: f64,
    speedup_vs_scalar: f64,
    /// Fraction of wide-RNG lane steps with the lane still drawing faults
    /// (from the per-row metrics delta; absent on the scalar path and on
    /// backends that never enter the wide generator).
    widegen_lane_utilisation: Option<f64>,
}

impl ToJson for GenerationRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("config", self.config.to_json()),
            ("backend", self.backend.to_json()),
            ("path", self.path.to_json()),
            ("faults_per_die", self.faults_per_die.to_json()),
            ("dies_per_second", self.dies_per_second.to_json()),
            ("speedup_vs_scalar", self.speedup_vs_scalar.to_json()),
            (
                "widegen_lane_utilisation",
                self.widegen_lane_utilisation.to_json(),
            ),
        ])
    }
}

/// Dies generated per second through a 256-die `BlockScratch` with the
/// wide lane-interleaved path on or off, single-threaded: a warm-up pass
/// grows the arena, then `reps × blocks` full blocks are timed.
fn measure_generation(
    memory: MemoryConfig,
    backend: &Backend,
    n_faults: u64,
    wide_generation: bool,
    blocks: u64,
    reps: u32,
) -> f64 {
    let seeder = StreamSeeder::new(0xD1E5);
    let mut scratch = BlockScratch::<W256>::new(memory);
    scratch.set_wide_generation(wide_generation);
    let lanes = W256::LANES as u64;
    let plan_for = |block: u64| {
        (0..lanes)
            .map(|j| PlannedSample {
                index: block * lanes + j,
                n_faults,
            })
            .collect::<Vec<_>>()
    };
    let run = |scratch: &mut BlockScratch<W256>, first: u64| {
        for block in first..first + blocks {
            let plan = plan_for(block);
            let die_block = scratch
                .generate_block(backend, &seeder, &plan, None)
                .unwrap();
            black_box(die_block.die_count());
        }
    };
    run(&mut scratch, 0); // warm-up: grow every lane buffer
    let started = Instant::now();
    for rep in 0..reps {
        run(&mut scratch, (1 + u64::from(rep)) * blocks);
    }
    let seconds = started.elapsed().as_secs_f64();
    (u64::from(reps) * blocks * lanes) as f64 / seconds
}

/// Measures the generation-vs-evaluation split in dies/s on one thread and
/// merges the rows into `BENCH_pipeline.json` under a `"datapath"` key,
/// preserving whatever sections the pipeline bench already wrote there.
fn bench_datapath_json(_c: &mut Criterion) {
    let memory = MemoryConfig::paper_16kb();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // The benched operating points mirror the kernel section's configs:
    // the Fig. 5 `P_cell = 1e-4` density (12 faults per die — its mean
    // failure count) on every backend, and the dense-ECC point (8192
    // faults per die) where batched sampling amortises best. Fewer blocks
    // at the dense point keep the run short; the per-rep die count stays
    // in the thousands either way.
    let cells = (memory.rows() * 32) as f64;
    let points: [(&'static str, BackendKind, f64, u64, u64); 4] = [
        ("fig5_p1e-4", BackendKind::Sram, 1e-4, 12, 24),
        ("fig5_p1e-4", BackendKind::Dram, 1e-4, 12, 24),
        ("fig5_p1e-4", BackendKind::Mlc, 1e-4, 12, 24),
        (
            "dense_ecc_p6.3e-2",
            BackendKind::Sram,
            8192.0 / cells,
            8192,
            4,
        ),
    ];

    println!("\n== group: datapath_generation (BENCH_pipeline.json) ==");
    const REPS: u32 = 3;
    // A recorder brackets each measured path so the wide rows report how
    // full their RNG lanes actually ran, next to the dies/s.
    let recorder = std::sync::Arc::new(obs::Recorder::new());
    let _metrics_guard = obs::install(&recorder);
    let mut rows = Vec::new();
    for (config, kind, p_cell, n_faults, blocks) in points {
        let backend = Backend::at_p_cell(kind, memory, p_cell).unwrap();
        let timed = |wide_generation: bool| {
            let before = recorder.snapshot();
            let dies =
                measure_generation(memory, &backend, n_faults, wide_generation, blocks, REPS);
            (dies, recorder.snapshot().since(&before))
        };
        let (scalar, scalar_metrics) = timed(false);
        let (wide, wide_metrics) = timed(true);
        for (path, dies_per_second, metrics) in [
            ("scalar", scalar, scalar_metrics),
            ("wide", wide, wide_metrics),
        ] {
            let row = GenerationRow {
                config,
                backend: kind.to_string(),
                path,
                faults_per_die: n_faults,
                dies_per_second,
                speedup_vs_scalar: dies_per_second / scalar,
                widegen_lane_utilisation: metrics.wide_lane_utilisation(),
            };
            let lanes = row
                .widegen_lane_utilisation
                .map(|utilisation| format!(", lanes {:.0}%", 100.0 * utilisation))
                .unwrap_or_default();
            println!(
                "{:<18} {:<5} {:<7} n={:<5} {:>12.0} dies/s   ({:.2}x vs scalar{lanes})",
                row.config,
                row.backend,
                row.path,
                row.faults_per_die,
                row.dies_per_second,
                row.speedup_vs_scalar,
            );
            rows.push(row);
        }
    }

    // Evaluation half of the split, in the same units: fig5-catalogue
    // sparse MSE over a fixed 12-fault die (the generation rows' sparse
    // operating point), so generation and evaluation cost are directly
    // comparable per die.
    let schemes = Scheme::fig5_catalogue();
    let backend = SramVddBackend::with_p_cell(memory, 1e-4).unwrap();
    let mut scratch = DieScratch::new(memory);
    let mut rng = StreamSeeder::new(0xD1E5).rng_for_sample(0);
    scratch.generate(&backend, &mut rng, 12).unwrap();
    let map = scratch.map();
    let evaluate = || {
        schemes
            .iter()
            .map(|scheme| memory_mse_sparse(scheme, black_box(map)))
            .sum::<f64>()
    };
    let eval_dies = 4096u64;
    black_box(evaluate()); // warm-up
    let started = Instant::now();
    for _ in 0..eval_dies {
        black_box(evaluate());
    }
    let eval_dies_per_second = eval_dies as f64 / started.elapsed().as_secs_f64();
    println!(
        "{:<18} {:<5} {:<7} n={:<5} {:>12.0} dies/s   (fig5 catalogue, sparse kernel)",
        "fig5_p1e-4", "sram", "eval", 12, eval_dies_per_second,
    );

    let section = JsonValue::object([
        ("host_cpus", host_cpus.to_json()),
        ("threads", 1u64.to_json()),
        ("generation", JsonValue::object([("rows", rows.to_json())])),
        (
            "evaluation",
            JsonValue::object([(
                "rows",
                JsonValue::Array(vec![JsonValue::object([
                    ("config", "fig5_p1e-4".to_json()),
                    ("backend", "sram".to_json()),
                    ("kernel", "sparse".to_json()),
                    ("faults_per_die", 12u64.to_json()),
                    ("dies_per_second", eval_dies_per_second.to_json()),
                ])]),
            )]),
        ),
    ]);

    // Read-merge-write: replace (or append) only the `"datapath"` key so
    // the worker-scaling and kernel sections survive whichever bench ran
    // last. A missing or unparseable file degrades to a fresh document.
    let path =
        std::env::var("BENCH_PIPELINE_JSON").unwrap_or_else(|_| "BENCH_pipeline.json".into());
    let mut fields = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| JsonValue::parse(&text).ok())
        .and_then(|doc| match doc {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_else(|| vec![("bench".to_owned(), "pipeline_throughput".to_json())]);
    match fields.iter_mut().find(|(key, _)| key == "datapath") {
        Some((_, value)) => *value = section,
        None => fields.push(("datapath".to_owned(), section)),
    }
    match std::fs::write(&path, JsonValue::Object(fields).to_pretty_string()) {
        Ok(()) => println!("merged datapath series into {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_shifter,
    bench_ecc_codecs,
    bench_shuffled_memory,
    bench_bist,
    bench_die_pipeline,
    bench_datapath_json
);
criterion_main!(benches);
