//! Registry-wide gates for the multi-process campaign driver: for **every**
//! figure of the `faultmit_bench::figures` registry, `campaign_run
//! --figure <name> --shards K --jobs J` must render JSON **byte-identical**
//! to the monolithic figure binary at the same flags; checkpoints must be
//! reused, corrupted checkpoints must be detected and recomputed, and the
//! merge layer must reject mixed-figure shard sets with errors that name
//! the offending shard indices.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const RUN_BIN: &str = env!("CARGO_BIN_EXE_campaign_run");
const SHARD_BIN: &str = env!("CARGO_BIN_EXE_campaign_shard");
const MERGE_BIN: &str = env!("CARGO_BIN_EXE_campaign_merge");

/// Every registered figure with the smallest budget that still exercises
/// its campaign, and the shard/job split the gate runs it at.
const CATALOGUE: &[(&str, &str, &[&str], usize)] = &[
    ("fig4", env!("CARGO_BIN_EXE_fig4_error_magnitude"), &[], 2),
    (
        "fig5",
        env!("CARGO_BIN_EXE_fig5_mse_cdf"),
        &["--samples", "2"],
        2,
    ),
    ("fig6", env!("CARGO_BIN_EXE_fig6_overhead"), &[], 3),
    (
        "fig7",
        env!("CARGO_BIN_EXE_fig7_quality"),
        &["elasticnet", "--samples", "1"],
        3,
    ),
    (
        "fig8",
        env!("CARGO_BIN_EXE_fig8_backend_matrix"),
        &["--samples", "2"],
        2,
    ),
    (
        "fig9",
        env!("CARGO_BIN_EXE_fig9_data_sensitivity"),
        &["--backend", "mlc", "--samples", "2"],
        3,
    ),
    (
        "ablation_lut_write_path",
        env!("CARGO_BIN_EXE_ablation_lut_write_path"),
        &[],
        2,
    ),
    (
        "ablation_shift_policy",
        env!("CARGO_BIN_EXE_ablation_shift_policy"),
        &["--samples", "2"],
        3,
    ),
    (
        "table1",
        env!("CARGO_BIN_EXE_table1_applications"),
        &["--samples", "32"],
        2,
    ),
];

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "faultmit-registry-pipeline-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn join(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn run(binary: &str, args: &[&str]) -> Output {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {binary}: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn read(path: &str) -> String {
    std::fs::read_to_string(Path::new(path)).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn driver_args<'a>(
    figure: &'a str,
    flags: &[&'a str],
    shards: &'a str,
    dir: &'a str,
    out: &'a str,
) -> Vec<&'a str> {
    let mut args = vec!["--figure", figure, "--shards", shards, "--jobs", "2"];
    args.extend_from_slice(flags);
    args.extend(["--dir", dir, "--out", out]);
    args
}

#[test]
fn campaign_run_matches_every_monolithic_binary_in_the_registry() {
    // The full-registry acceptance gate: any K, any J, byte-identical JSON.
    for &(figure, mono_bin, flags, shard_count) in CATALOGUE {
        let dir = TempDir::new(&format!("loop-{figure}"));
        let mono = dir.join("mono.json");
        let merged = dir.join("merged.json");
        let shard_dir = dir.join("shards");
        let shards = shard_count.to_string();

        let mut mono_args: Vec<&str> = flags.to_vec();
        mono_args.extend(["--json", &mono]);
        run(mono_bin, &mono_args);

        run(
            RUN_BIN,
            &driver_args(figure, flags, &shards, &shard_dir, &merged),
        );

        assert_eq!(
            read(&mono),
            read(&merged),
            "{figure}: campaign_run ({shard_count} shards) differs from the monolithic binary"
        );
    }
}

#[test]
fn campaign_run_reuses_checkpoints_and_recovers_a_corrupted_shard() {
    let dir = TempDir::new("recover");
    let mono = dir.join("mono.json");
    let merged = dir.join("merged.json");
    let shard_dir = dir.join("shards");

    run(
        env!("CARGO_BIN_EXE_fig5_mse_cdf"),
        &["--samples", "2", "--json", &mono],
    );
    let flags: &[&str] = &["--samples", "2"];
    run(
        RUN_BIN,
        &driver_args("fig5", flags, "3", &shard_dir, &merged),
    );
    assert_eq!(read(&mono), read(&merged));

    // Second run: every shard checkpoint is honoured (children report the
    // skip on the driver's inherited stdout).
    let output = run(
        RUN_BIN,
        &driver_args("fig5", flags, "3", &shard_dir, &merged),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        stdout.matches("skipping").count(),
        3,
        "expected all 3 checkpoints to be reused:\n{stdout}"
    );

    // Corrupt one checkpoint (a simulated killed/garbled shard): the driver
    // must detect, recompute only that shard, and still render identical
    // bytes.
    let corrupted = Path::new(&shard_dir).join("fig5-1of3.json");
    std::fs::write(&corrupted, "{\"format\": \"garbage\"").unwrap();
    let output = run(
        RUN_BIN,
        &driver_args("fig5", flags, "3", &shard_dir, &merged),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        stdout.matches("skipping").count(),
        2,
        "only the surviving checkpoints may be skipped:\n{stdout}"
    );
    assert!(
        stderr.contains("not a valid shard file"),
        "the corrupted checkpoint must be reported:\n{stderr}"
    );
    assert_eq!(read(&mono), read(&merged));
}

#[test]
fn campaign_run_lists_the_registry() {
    let output = run(RUN_BIN, &["--figure", "list"]);
    let stdout = String::from_utf8_lossy(&output.stdout);
    for &(figure, _, _, _) in CATALOGUE {
        assert!(stdout.contains(figure), "missing {figure}:\n{stdout}");
    }
}

#[test]
fn campaign_run_rejects_unknown_figures() {
    let output = Command::new(RUN_BIN)
        .args(["--figure", "fig99", "--shards", "2"])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown figure"), "{stderr}");
}

#[test]
fn merge_rejects_mixed_figure_shard_sets_by_name() {
    let dir = TempDir::new("mixed");
    let fig5 = dir.join("fig5-0of2.json");
    let fig4 = dir.join("fig4-1of2.json");
    run(
        SHARD_BIN,
        &[
            "--figure",
            "fig5",
            "--samples",
            "2",
            "--shard",
            "0/2",
            "--out",
            &fig5,
        ],
    );
    run(
        SHARD_BIN,
        &["--figure", "fig4", "--shard", "1/2", "--out", &fig4],
    );

    let output = Command::new(MERGE_BIN)
        .args([&fig5, &fig4, "--out", &dir.join("bad.json")])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("mix figures"), "{stderr}");
    assert!(stderr.contains("fig4"), "{stderr}");
}

#[test]
fn merge_errors_enumerate_missing_shard_indices() {
    // Shards 0 and 3 of a 4-way fig6 campaign: the merge error must name
    // exactly the missing indices 1 and 2 instead of stopping at the first.
    let dir = TempDir::new("missing");
    let s0 = dir.join("s0.json");
    let s3 = dir.join("s3.json");
    run(
        SHARD_BIN,
        &["--figure", "fig6", "--shard", "0/4", "--out", &s0],
    );
    run(
        SHARD_BIN,
        &["--figure", "fig6", "--shard", "3/4", "--out", &s3],
    );

    let output = Command::new(MERGE_BIN)
        .args([&s0, &s3, "--out", &dir.join("bad.json")])
        .output()
        .unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("missing shard(s) [1, 2]"), "{stderr}");
    assert!(stderr.contains("4-shard set"), "{stderr}");
}
