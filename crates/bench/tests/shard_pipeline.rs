//! Process-level gates for the sharded campaign pipeline: `campaign_shard`
//! processes run as genuinely separate OS processes, their shard files are
//! merged by `campaign_merge`, and the rendered figure JSON must be
//! **byte-identical** to the monolithic figure binary's `--json` output.
//! Completed shard files must act as checkpoints (resumability).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run(binary: &str, args: &[&str]) -> Output {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {binary}: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn stdout_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "faultmit-shard-pipeline-{label}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn join(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn read(path: &str) -> String {
    std::fs::read_to_string(Path::new(path)).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Parses a shard checkpoint with its metrics telemetry stripped: the
/// recorded wall clocks (and the stage timers inside the snapshot) vary
/// run to run by design, so checkpoint equality means "same campaign
/// state", not "same bytes".
fn state_of(path: &str) -> faultmit_bench::shard::ShardState {
    let mut state = faultmit_bench::shard::ShardState::parse(&read(path))
        .unwrap_or_else(|e| panic!("parse {path}: {e}"));
    state.metrics = Default::default();
    state
}

const SHARD_BIN: &str = env!("CARGO_BIN_EXE_campaign_shard");
const MERGE_BIN: &str = env!("CARGO_BIN_EXE_campaign_merge");
const FIG5_BIN: &str = env!("CARGO_BIN_EXE_fig5_mse_cdf");
const FIG7_BIN: &str = env!("CARGO_BIN_EXE_fig7_quality");

#[test]
fn fig5_two_shard_merge_is_byte_identical_to_the_monolithic_binary_per_backend() {
    for backend in ["sram", "dram", "mlc"] {
        let dir = TempDir::new(&format!("fig5-{backend}"));
        let mono = dir.join("mono.json");
        let s0 = dir.join("s0.json");
        let s1 = dir.join("s1.json");
        let merged = dir.join("merged.json");

        run(
            FIG5_BIN,
            &["--backend", backend, "--samples", "2", "--json", &mono],
        );
        run(
            SHARD_BIN,
            &[
                "fig5",
                "--backend",
                backend,
                "--samples",
                "2",
                "--shard",
                "0/2",
                "--out",
                &s0,
            ],
        );
        run(
            SHARD_BIN,
            &[
                "fig5",
                "--backend",
                backend,
                "--samples",
                "2",
                "--shard",
                "1/2",
                "--out",
                &s1,
            ],
        );
        // Shard files may arrive in any order; merge sorts by shard index.
        run(MERGE_BIN, &[&s1, &s0, "--out", &merged]);

        assert_eq!(
            read(&mono),
            read(&merged),
            "{backend}: merged shards differ from the monolithic fig5 JSON"
        );
    }
}

#[test]
fn fig7_three_shard_merge_is_byte_identical_to_the_monolithic_binary() {
    let dir = TempDir::new("fig7");
    let mono = dir.join("mono.json");
    let merged = dir.join("merged.json");

    run(FIG7_BIN, &["elasticnet", "--samples", "1", "--json", &mono]);
    let mut shard_files = Vec::new();
    for index in 0..3 {
        let path = dir.join(&format!("s{index}.json"));
        run(
            SHARD_BIN,
            &[
                "fig7",
                "elasticnet",
                "--samples",
                "1",
                "--shard",
                &format!("{index}/3"),
                "--out",
                &path,
            ],
        );
        shard_files.push(path);
    }
    let mut args: Vec<&str> = shard_files.iter().map(String::as_str).collect();
    args.extend(["--out", &merged]);
    run(MERGE_BIN, &args);

    assert_eq!(
        read(&mono),
        read(&merged),
        "merged shards differ from the monolithic fig7 JSON"
    );
}

#[test]
fn completed_shard_files_are_checkpoints() {
    let dir = TempDir::new("resume");
    let mono = dir.join("mono.json");
    let s0 = dir.join("s0.json");
    let s1 = dir.join("s1.json");
    let merged = dir.join("merged.json");
    let shard_args = |shard: &str, out: &str| {
        vec![
            "fig5".to_owned(),
            "--samples".to_owned(),
            "2".to_owned(),
            "--shard".to_owned(),
            shard.to_owned(),
            "--out".to_owned(),
            out.to_owned(),
        ]
    };
    let run_shard = |shard: &str, out: &str| {
        let args = shard_args(shard, out);
        let args: Vec<&str> = args.iter().map(String::as_str).collect();
        stdout_of(&run(SHARD_BIN, &args))
    };

    // First pass: both shards compute.
    assert!(!run_shard("0/2", &s0).contains("skipping"));
    assert!(!run_shard("1/2", &s1).contains("skipping"));
    let s0_bytes = read(&s0);
    let s0_state = state_of(&s0);
    let s1_state = state_of(&s1);

    // Second pass: both shard files are checkpoints — no recomputation
    // (the file is untouched, wall-clock telemetry and all).
    assert!(run_shard("0/2", &s0).contains("skipping"));
    assert!(run_shard("1/2", &s1).contains("skipping"));
    assert_eq!(read(&s0), s0_bytes);

    // Delete shard 0: re-running the campaign recomputes only the missing
    // shard; the surviving file is still honoured as a checkpoint. The
    // recomputed state is identical up to its (freshly measured)
    // wall-clock telemetry.
    std::fs::remove_file(Path::new(&s0)).unwrap();
    assert!(!run_shard("0/2", &s0).contains("skipping"));
    assert!(run_shard("1/2", &s1).contains("skipping"));
    assert_eq!(state_of(&s0), s0_state, "recomputed shard diverged");
    assert_eq!(state_of(&s1), s1_state);

    // A shard file from a different campaign configuration is recomputed,
    // not trusted.
    let foreign_args = ["fig5", "--samples", "3", "--shard", "0/2", "--out", &s0];
    let foreign = run(SHARD_BIN, &foreign_args);
    assert!(!stdout_of(&foreign).contains("skipping"));
    assert_ne!(state_of(&s0), s0_state);
    // Restore and verify the merged figure still matches the monolithic run.
    assert!(!run_shard("0/2", &s0).contains("skipping"));
    run(FIG5_BIN, &["--samples", "2", "--json", &mono]);
    run(MERGE_BIN, &[&s0, &s1, "--out", &merged]);
    assert_eq!(read(&mono), read(&merged));
}

#[test]
fn campaign_shard_refuses_an_unparseable_shard_spec() {
    // A bad --shard (e.g. the 1-based typo 2/2) must be fatal, not a silent
    // fallback to the monolithic 0/1 shard.
    let dir = TempDir::new("bad-shard");
    let out = dir.join("s.json");
    let status = Command::new(SHARD_BIN)
        .args(["fig5", "--samples", "2", "--shard", "2/2", "--out", &out])
        .output()
        .unwrap();
    assert!(!status.status.success());
    assert!(!Path::new(&out).exists());
}

#[test]
fn merge_rejects_mismatched_or_incomplete_shard_sets() {
    let dir = TempDir::new("mismatch");
    let sram = dir.join("sram0.json");
    let dram = dir.join("dram1.json");
    run(
        SHARD_BIN,
        &["fig5", "--samples", "2", "--shard", "0/2", "--out", &sram],
    );
    run(
        SHARD_BIN,
        &[
            "fig5",
            "--backend",
            "dram",
            "--samples",
            "2",
            "--shard",
            "1/2",
            "--out",
            &dram,
        ],
    );

    // Backend mismatch.
    let status = Command::new(MERGE_BIN)
        .args([&sram, &dram, "--out", &dir.join("bad.json")])
        .output()
        .unwrap();
    assert!(!status.status.success());

    // Incomplete set (1 of 2 shards).
    let status = Command::new(MERGE_BIN)
        .args([&sram, "--out", &dir.join("bad.json")])
        .output()
        .unwrap();
    assert!(!status.status.success());
}
