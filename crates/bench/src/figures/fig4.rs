//! Fig. 4 — worst-case error magnitude per faulty bit position for every
//! FM-LUT width (deterministic; no Monte-Carlo content).

use super::{
    single_panel, take_table, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::Table;
use faultmit_core::error_magnitude::error_magnitude_profile;
use faultmit_core::SegmentGeometry;
use faultmit_sim::{Parallelism, ShardSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;

const WORD_BITS: usize = 32;

#[derive(Debug)]
struct Fig4Series {
    /// Series label ("no-correction" or "nFM=k").
    label: String,
    /// log2(error magnitude) per faulty bit position 0..31.
    log2_error_by_bit: Vec<u32>,
}

impl ToJson for Fig4Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", self.label.to_json()),
            ("log2_error_by_bit", self.log2_error_by_bit.to_json()),
        ])
    }
}

fn compute_series() -> Result<Vec<Fig4Series>, FigureError> {
    let mut series = vec![Fig4Series {
        label: "no-correction".to_owned(),
        log2_error_by_bit: error_magnitude_profile(WORD_BITS, None),
    }];
    for n_fm in 1..=5usize {
        let geometry = SegmentGeometry::new(WORD_BITS, n_fm)?;
        series.push(Fig4Series {
            label: format!("nFM={n_fm}"),
            log2_error_by_bit: error_magnitude_profile(WORD_BITS, Some(geometry)),
        });
    }
    Ok(series)
}

/// The registered Fig. 4 figure.
pub struct Fig4Def;

impl FigureDef for Fig4Def {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig4_error_magnitude"]
    }

    fn description(&self) -> &'static str {
        "worst-case error magnitude per faulty bit position (deterministic)"
    }

    fn spec(&self, _options: &RunOptions) -> FigureSpec {
        // Fully deterministic: every CLI knob is normalised away so
        // equivalent invocations share checkpoint files.
        FigureSpec {
            figure: self.name().to_owned(),
            backend: None,
            full_scale: false,
            samples_per_count: 1,
            benchmarks: Vec::new(),
            image: None,
            kind_law: None,
            kernel: None,
        }
    }

    fn panel_labels(&self, _spec: &FigureSpec) -> Vec<String> {
        vec!["fig4".to_owned()]
    }

    fn run_shard(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        _shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        // Deterministic figures are recomputed by every shard; the merge
        // validates the copies agree.
        Ok(vec![PanelState::Table {
            rows: compute_series()?.to_json(),
        }])
    }

    fn render(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let rows = take_table(single_panel(panels, "fig4")?, "fig4")?;
        let series = compute_series()?;
        if rows != series.to_json() {
            return Err("fig4 shard state does not match the deterministic series".into());
        }

        let mut headers = vec!["faulty bit".to_owned()];
        headers.extend(series.iter().map(|s| s.label.clone()));
        let mut table = Table::new(
            "Fig. 4 — log2(error magnitude) per faulty bit position (32-bit word)",
            headers,
        );
        for bit in 0..WORD_BITS {
            let mut row = vec![bit.to_string()];
            for s in &series {
                row.push(s.log2_error_by_bit[bit].to_string());
            }
            table.add_row(row);
        }

        let mut report = String::new();
        writeln!(report, "{table}")?;

        // Summary: the worst-case bound per configuration (2^(S-1)).
        let mut bounds = BTreeMap::new();
        for n_fm in 1..=5usize {
            let geometry = SegmentGeometry::new(WORD_BITS, n_fm)?;
            bounds.insert(format!("nFM={n_fm}"), geometry.max_error_magnitude());
        }
        writeln!(
            report,
            "worst-case error magnitude bound per configuration:"
        )?;
        for (label, bound) in &bounds {
            writeln!(report, "  {label}: {bound} (= 2^(S-1))")?;
        }
        writeln!(
            report,
            "  no-correction: {} (= 2^(W-1))",
            1u64 << (WORD_BITS - 1)
        )?;

        Ok(RenderedFigure {
            document: rows,
            report,
        })
    }
}
