//! Fig. 9 (extension) — data-dependent fault sensitivity: memory-MSE
//! statistics for every protection scheme across technologies, stored data
//! images and fault-kind laws.
//!
//! The paper's MSE protocol evaluates an all-zeros background, under which
//! a stuck-at-0 cell is always silent; this figure evaluates faults
//! *relative to the stored word* over the [`ImageSpec`] catalogue (zeros,
//! ones, uniform-random, sparse, and a fixed-point application matrix), so
//! the asymmetric stuck-at laws of the DRAM/MLC backends finally
//! differentiate schemes by the data they protect. Under the `flip` law
//! every image row of the matrix is identical (a control for the
//! data-aware path); under `stuck-at:P` the gap between the zeros and ones
//! rows measures the data dependence directly.

use super::{
    take_catalogue, EngineTuning, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure,
    ShardRun,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_analysis::{
    CatalogueAccumulator, MonteCarloConfig, MonteCarloEngine, SchemeMseResult,
};
use faultmit_core::{MitigationScheme, Scheme};
use faultmit_memsim::image::{AppImage, ImageSpec};
use faultmit_memsim::{Backend, BackendKind, FaultBackend, FaultKindLaw, MemoryConfig};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

/// The campaign seed baked into the Fig. 9 protocol.
pub const FIG9_SEED: u64 = 0xF169;

/// Marginal per-cell fault probability every cell of the matrix is
/// calibrated to, so image effects are compared at matched fault density
/// across technologies.
pub const FIG9_P_CELL: f64 = 1e-4;

/// Seed of the default random/sparse images (a fixed protocol constant, so
/// the default sweep is one reproducible campaign).
const FIG9_IMAGE_SEED: u64 = 0xF169_DA7A;

/// Failure-count cap of the reduced configuration (the full scale lifts it
/// to the 99th percentile of the density-matched binomial, ~2x the mean).
fn failure_cap(spec: &FigureSpec) -> u64 {
    if spec.full_scale {
        64
    } else {
        24
    }
}

/// The image sweep: the `--image` restriction when given, otherwise the
/// default catalogue — one image per data profile class.
fn spec_images(spec: &FigureSpec) -> Vec<ImageSpec> {
    match spec.image {
        Some(image) => vec![image],
        None => vec![
            ImageSpec::Zeros,
            ImageSpec::Ones,
            ImageSpec::UniformRandom {
                seed: FIG9_IMAGE_SEED,
            },
            ImageSpec::Sparse {
                seed: FIG9_IMAGE_SEED,
            },
            ImageSpec::App(AppImage::Wine),
        ],
    }
}

/// The fault-kind-law sweep: the `--kind-law` restriction when given,
/// otherwise the paper's observable-flip control plus a decay-style
/// asymmetric stuck-at law (90 % of faulty cells read 0).
fn spec_laws(spec: &FigureSpec) -> Vec<FaultKindLaw> {
    match spec.kind_law {
        Some(law) => vec![law],
        None => vec![
            FaultKindLaw::AlwaysFlip,
            FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.9,
            },
        ],
    }
}

fn spec_kinds(spec: &FigureSpec) -> Vec<BackendKind> {
    match spec.backend {
        Some(kind) => vec![kind],
        None => BackendKind::ALL.to_vec(),
    }
}

fn spec_schemes() -> Vec<Scheme> {
    let mut schemes = Scheme::fig5_catalogue();
    schemes.push(Scheme::secded32());
    schemes
}

/// The one panel-label template of the matrix — shard checkpoints store
/// these strings and the merge validates them, so
/// [`Fig9Campaign::label`] and [`Fig9Def::panel_labels`] must never
/// drift apart.
fn cell_label(kind: BackendKind, image: ImageSpec, law: FaultKindLaw) -> String {
    format!("{}:{}:{}", kind.name(), image, law)
}

/// One cell of the backend × image × law matrix, materialised into a
/// data-aware catalogue engine. The image *words* are not part of the
/// cell: evaluation-time callers materialise each distinct image once (see
/// [`fig9_image_words`]) and share it across the kind/law axes, while the
/// render path never materialises any.
pub struct Fig9Campaign {
    /// The fault technology of this cell.
    pub kind: BackendKind,
    /// The stored-data image of this cell.
    pub image: ImageSpec,
    /// The fault-kind law of this cell.
    pub law: FaultKindLaw,
    /// The density-matched MSE engine.
    pub engine: MonteCarloEngine<Backend>,
}

/// Materialises one image of the Fig. 9 sweep (`None` = the all-zeros
/// fast path of the MSE engine).
///
/// # Errors
///
/// Propagates image-materialisation errors.
pub fn fig9_image_words(image: ImageSpec) -> Result<Option<Vec<u64>>, FigureError> {
    Ok(match image {
        ImageSpec::Zeros => None,
        spec => Some(faultmit_apps::image::image_words(
            spec,
            MemoryConfig::paper_16kb(),
        )?),
    })
}

impl Fig9Campaign {
    /// Materialises every cell of the spec's matrix, in panel order
    /// (backend-major, then image, then law).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration and image-materialisation errors.
    pub fn matrix(
        spec: &FigureSpec,
        parallelism: Parallelism,
    ) -> Result<Vec<Fig9Campaign>, FigureError> {
        Self::matrix_tuned(spec, EngineTuning::default(), parallelism)
    }

    /// [`Fig9Campaign::matrix`] with identity-free engine tuning applied to
    /// every cell (results stay bit-identical under any tuning).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration and image-materialisation errors.
    pub fn matrix_tuned(
        spec: &FigureSpec,
        tuning: EngineTuning,
        parallelism: Parallelism,
    ) -> Result<Vec<Fig9Campaign>, FigureError> {
        let memory = MemoryConfig::paper_16kb();
        let cap = failure_cap(spec);
        let mut cells = Vec::new();
        for kind in spec_kinds(spec) {
            for image in spec_images(spec) {
                for law in spec_laws(spec) {
                    let backend =
                        Backend::at_p_cell(kind, memory, FIG9_P_CELL)?.with_kind_law(law)?;
                    let max_failures = backend.failure_distribution()?.n_max(0.99).clamp(1, cap);
                    let engine = MonteCarloEngine::new(
                        MonteCarloConfig::for_backend(backend)
                            .with_samples_per_count(spec.samples_per_count)
                            .with_max_failures(max_failures)
                            .with_parallelism(parallelism)
                            .with_image(image)
                            .with_kernel(spec.kernel_kind())
                            .with_auto_threshold(tuning.auto_threshold)
                            .with_wide_generation(tuning.wide_generation.unwrap_or(true)),
                    );
                    cells.push(Fig9Campaign {
                        kind,
                        image,
                        law,
                        engine,
                    });
                }
            }
        }
        Ok(cells)
    }

    /// The cell's panel label (`"<backend>:<image>:<law>"`).
    #[must_use]
    pub fn label(&self) -> String {
        cell_label(self.kind, self.image, self.law)
    }

    /// Runs one shard of the cell's data-aware campaign against the cell's
    /// materialised image (`None` = the all-zeros fast path; see
    /// [`fig9_image_words`]).
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard(
        &self,
        shard: ShardSpec,
        data: Option<&[u64]>,
    ) -> Result<CatalogueAccumulator, FigureError> {
        Ok(self
            .engine
            .run_catalogue_shard_on_image(&spec_schemes(), FIG9_SEED, shard, data)?)
    }

    /// [`Fig9Campaign::run_shard`] returning the run's generation-time
    /// telemetry alongside the accumulator.
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard_stats(
        &self,
        shard: ShardSpec,
        data: Option<&[u64]>,
    ) -> Result<(CatalogueAccumulator, faultmit_sim::ShardStats), FigureError> {
        Ok(self.engine.run_catalogue_shard_on_image_stats(
            &spec_schemes(),
            FIG9_SEED,
            shard,
            data,
        )?)
    }

    /// Reduces (possibly shard-merged) state to per-scheme results.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn results(
        &self,
        state: CatalogueAccumulator,
    ) -> Result<Vec<SchemeMseResult>, FigureError> {
        Ok(self.engine.results_from_state(&spec_schemes(), state)?)
    }
}

#[derive(Debug)]
struct SensitivityRow {
    backend: &'static str,
    image: String,
    kind_law: String,
    operating_point: String,
    p_cell: f64,
    scheme: String,
    mean_mse: f64,
    mse_at_99pct_yield: Option<f64>,
    yield_at_mse_1e6: f64,
}

impl ToJson for SensitivityRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("backend", self.backend.to_json()),
            ("image", self.image.to_json()),
            ("kind_law", self.kind_law.to_json()),
            ("operating_point", self.operating_point.to_json()),
            ("p_cell", self.p_cell.to_json()),
            ("scheme", self.scheme.to_json()),
            ("mean_mse", self.mean_mse.to_json()),
            ("mse_at_99pct_yield", self.mse_at_99pct_yield.to_json()),
            ("yield_at_mse_1e6", self.yield_at_mse_1e6.to_json()),
        ])
    }
}

/// The registered Fig. 9 data-sensitivity figure.
pub struct Fig9Def;

impl FigureDef for Fig9Def {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig9_data_sensitivity", "data_sensitivity"]
    }

    fn description(&self) -> &'static str {
        "scheme x backend x data-image x fault-kind-law MSE sensitivity matrix"
    }

    fn spec(&self, options: &RunOptions) -> FigureSpec {
        let default_samples = if options.full_scale { 400 } else { 30 };
        FigureSpec {
            figure: self.name().to_owned(),
            // None = sweep every technology, image and law.
            backend: options.backend,
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_samples),
            benchmarks: Vec::new(),
            image: options.image,
            kind_law: options.kind_law,
            kernel: options.kernel,
        }
    }

    fn panel_labels(&self, spec: &FigureSpec) -> Vec<String> {
        let images = spec_images(spec);
        let laws = spec_laws(spec);
        spec_kinds(spec)
            .iter()
            .flat_map(|&kind| {
                let laws = laws.clone();
                images.iter().flat_map(move |&image| {
                    laws.clone()
                        .into_iter()
                        .map(move |law| cell_label(kind, image, law))
                })
            })
            .collect()
    }

    fn words_per_sample(&self, _spec: &FigureSpec) -> Option<u64> {
        Some(MemoryConfig::paper_16kb().rows() as u64)
    }

    fn resolved_kernel(&self, spec: &FigureSpec) -> Option<String> {
        self.resolved_kernel_tuned(spec, EngineTuning::default())
    }

    fn resolved_kernel_tuned(&self, spec: &FigureSpec, tuning: EngineTuning) -> Option<String> {
        // Every cell of the matrix resolves `auto` at its own density; the
        // telemetry joins the distinct choices.
        let cells = Fig9Campaign::matrix_tuned(spec, tuning, Parallelism::Serial).ok()?;
        super::kernel_telemetry(
            spec.kernel,
            cells
                .iter()
                .filter_map(|cell| cell.engine.config().resolved_kernel().ok()),
        )
    }

    fn run_shard(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        Ok(self
            .run_shard_tuned(spec, EngineTuning::default(), parallelism, shard)?
            .panels)
    }

    fn run_shard_tuned(
        &self,
        spec: &FigureSpec,
        tuning: EngineTuning,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<ShardRun, FigureError> {
        let scheme_names: Vec<String> = spec_schemes().iter().map(MitigationScheme::name).collect();
        // One materialisation per distinct image, shared across the
        // backend and law axes of the matrix.
        let words_by_image: Vec<(ImageSpec, Option<Vec<u64>>)> = spec_images(spec)
            .into_iter()
            .map(|image| Ok((image, fig9_image_words(image)?)))
            .collect::<Result<_, FigureError>>()?;
        let mut generation_seconds = 0.0;
        let panels = Fig9Campaign::matrix_tuned(spec, tuning, parallelism)?
            .into_iter()
            .map(|cell| {
                let data = words_by_image
                    .iter()
                    .find(|(image, _)| *image == cell.image)
                    .and_then(|(_, words)| words.as_deref());
                let (accumulator, stats) = cell.run_shard_stats(shard, data)?;
                generation_seconds += stats.generation_seconds;
                Ok(PanelState::Catalogue {
                    scheme_names: scheme_names.clone(),
                    accumulator,
                })
            })
            .collect::<Result<Vec<_>, FigureError>>()?;
        Ok(ShardRun {
            panels,
            generation_seconds: Some(generation_seconds),
        })
    }

    fn render(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let cells = Fig9Campaign::matrix(spec, parallelism)?;
        if panels.len() != cells.len() {
            return Err(format!(
                "fig9 expects {} backend x image x law panels, got {}",
                cells.len(),
                panels.len()
            )
            .into());
        }

        let mut report = String::new();
        writeln!(
            report,
            "Fig. 9 data sensitivity: 16KB memory at matched P_cell = {FIG9_P_CELL:.0e}, \
             {} scheme(s) x {} backend(s) x {} image(s) x {} law(s), {} maps per failure count",
            spec_schemes().len(),
            spec_kinds(spec).len(),
            spec_images(spec).len(),
            spec_laws(spec).len(),
            spec.samples_per_count,
        )?;

        let mut table = Table::new(
            "Fig. 9 — scheme x backend x data image x fault-kind law (memory MSE)",
            vec![
                "backend".into(),
                "image".into(),
                "kind law".into(),
                "scheme".into(),
                "mean MSE".into(),
                "MSE @ 99% yield".into(),
                "yield @ MSE<1e6".into(),
            ],
        );

        let mut rows = Vec::new();
        for (cell, panel) in cells.iter().zip(panels) {
            let (_, accumulator) = take_catalogue(panel, "fig9")?;
            let results = cell.results(accumulator)?;
            for result in &results {
                let mean = result.cdf.mean().unwrap_or(0.0);
                let at_yield = result.mse_for_yield(0.99);
                let yield_1e6 = result.yield_at_mse(1e6);
                table.add_row(vec![
                    cell.kind.name().to_owned(),
                    cell.image.to_string(),
                    cell.law.to_string(),
                    result.scheme_name.clone(),
                    format_sci(mean),
                    at_yield.map_or_else(|| "unreachable".to_owned(), format_sci),
                    format_percent(yield_1e6),
                ]);
                rows.push(SensitivityRow {
                    backend: cell.kind.name(),
                    image: cell.image.to_string(),
                    kind_law: cell.law.to_string(),
                    operating_point: cell.engine.config().operating_point().label(),
                    p_cell: cell.engine.config().p_cell(),
                    scheme: result.scheme_name.clone(),
                    mean_mse: mean,
                    mse_at_99pct_yield: at_yield,
                    yield_at_mse_1e6: yield_1e6,
                });
            }
        }
        writeln!(report, "{table}")?;

        // Headline: the data-dependence gap — unprotected mean MSE over the
        // zeros vs ones images under the asymmetric stuck-at law.
        let gap = |image: &str| {
            rows.iter()
                .find(|row| {
                    row.image == image
                        && row.kind_law.starts_with("stuck-at:")
                        && row.scheme == "no-correction"
                })
                .map(|row| row.mean_mse)
        };
        if let (Some(zeros), Some(ones)) = (gap("zeros"), gap("ones")) {
            writeln!(
                report,
                "data dependence (no-correction, asymmetric stuck-at): \
                 mean MSE zeros = {}, ones = {} ({:.1}x)",
                format_sci(zeros),
                format_sci(ones),
                ones / zeros.max(f64::MIN_POSITIVE),
            )?;
        }

        Ok(RenderedFigure {
            document: rows.to_json(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::find_figure;

    fn small_options(args: &[&str]) -> RunOptions {
        RunOptions::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn spec_resolves_the_sweep_axes() {
        let figure = find_figure("fig9_data_sensitivity").unwrap();
        let spec = figure.spec(&small_options(&[]));
        assert_eq!(spec.figure, "fig9");
        assert_eq!(spec_kinds(&spec).len(), 3);
        assert_eq!(spec_images(&spec).len(), 5);
        assert_eq!(spec_laws(&spec).len(), 2);
        assert_eq!(figure.panel_labels(&spec).len(), 30);

        let spec = figure.spec(&small_options(&[
            "--backend",
            "mlc",
            "--image",
            "ones",
            "--kind-law",
            "stuck-at:0.9",
        ]));
        assert_eq!(spec_kinds(&spec), vec![BackendKind::Mlc]);
        assert_eq!(spec_images(&spec), vec![ImageSpec::Ones]);
        assert_eq!(
            spec_laws(&spec),
            vec![FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.9
            }]
        );
        let labels = figure.panel_labels(&spec);
        assert_eq!(labels, vec!["mlc-nvm:ones:stuck-at:0.9".to_owned()]);

        // The matrix cells and the panel labels share one template in one
        // order — the invariant shard-file validation rests on.
        let spec = figure.spec(&small_options(&["--backend", "dram"]));
        let cells = Fig9Campaign::matrix(&spec, Parallelism::Serial).unwrap();
        assert_eq!(
            cells.iter().map(Fig9Campaign::label).collect::<Vec<_>>(),
            figure.panel_labels(&spec)
        );
    }

    #[test]
    fn asymmetric_stuck_at_shows_the_data_dependence_gap_in_the_json() {
        // The acceptance property: under an asymmetric stuck-at law the
        // zeros image is near-silent while the ones image is loud, and the
        // gap is visible in the rendered figure JSON.
        let figure = find_figure("fig9").unwrap();
        let options = small_options(&[
            "--backend",
            "sram",
            "--kind-law",
            "stuck-at:1",
            "--samples",
            "3",
        ]);
        let spec = figure.spec(&options);
        let panels = figure
            .run_shard(&spec, Parallelism::Serial, ShardSpec::solo())
            .unwrap();
        let rendered = figure.render(&spec, Parallelism::Serial, panels).unwrap();

        let mean_for = |image: &str, scheme: &str| -> f64 {
            rendered
                .document
                .as_array()
                .unwrap()
                .iter()
                .find(|row| {
                    row.get("image").and_then(JsonValue::as_str) == Some(image)
                        && row.get("scheme").and_then(JsonValue::as_str) == Some(scheme)
                })
                .and_then(|row| row.get("mean_mse"))
                .and_then(JsonValue::as_f64)
                .unwrap()
        };
        // Pure stuck-at-0 faults: silent over zeros, loud over ones.
        assert_eq!(mean_for("zeros", "no-correction"), 0.0);
        assert!(mean_for("ones", "no-correction") > 0.0);
        // A random image sits strictly between the two extremes.
        let random = format!("random:{FIG9_IMAGE_SEED}");
        let mid = mean_for(&random, "no-correction");
        assert!(mid > 0.0 && mid < mean_for("ones", "no-correction"));
    }

    #[test]
    fn flip_law_is_image_independent() {
        // The control: under the paper's always-flip protocol the stored
        // data cannot matter, so every image row carries identical numbers.
        let figure = find_figure("fig9").unwrap();
        let options = small_options(&["--backend", "dram", "--kind-law", "flip", "--samples", "2"]);
        let spec = figure.spec(&options);
        let panels = figure
            .run_shard(&spec, Parallelism::Serial, ShardSpec::solo())
            .unwrap();
        let rendered = figure.render(&spec, Parallelism::Serial, panels).unwrap();
        let rows = rendered.document.as_array().unwrap();
        let mean = |image: &str| -> Vec<f64> {
            rows.iter()
                .filter(|row| row.get("image").and_then(JsonValue::as_str) == Some(image))
                .map(|row| row.get("mean_mse").and_then(JsonValue::as_f64).unwrap())
                .collect()
        };
        let zeros = mean("zeros");
        assert!(!zeros.is_empty());
        for image in ["ones", "wine"] {
            assert_eq!(mean(image), zeros, "{image} differs under the flip law");
        }
    }
}
