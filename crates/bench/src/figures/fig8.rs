//! Fig. 8 (extension) — memory-MSE statistics for every protection scheme
//! across memory technologies and operating points.

use super::{
    take_catalogue, EngineTuning, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure,
    ShardRun,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit_core::{MitigationScheme, Scheme};
use faultmit_memsim::{
    Backend, BackendKind, CellFailureModel, DramRetentionBackend, FaultBackend, MemoryConfig,
    MlcNvmBackend, SramVddBackend,
};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

/// The campaign seed baked into the Fig. 8 protocol.
pub const FIG8_SEED: u64 = 0xF168;

#[derive(Debug)]
struct MatrixRow {
    backend: &'static str,
    operating_point: String,
    knob: f64,
    p_cell: f64,
    scheme: String,
    mean_mse: f64,
    mse_at_99pct_yield: Option<f64>,
    yield_at_mse_1e6: f64,
}

impl ToJson for MatrixRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("backend", self.backend.to_json()),
            ("operating_point", self.operating_point.to_json()),
            ("knob", self.knob.to_json()),
            ("p_cell", self.p_cell.to_json()),
            ("scheme", self.scheme.to_json()),
            ("mean_mse", self.mean_mse.to_json()),
            ("mse_at_99pct_yield", self.mse_at_99pct_yield.to_json()),
            ("yield_at_mse_1e6", self.yield_at_mse_1e6.to_json()),
        ])
    }
}

/// Three operating points per technology, ordered from conservative to
/// aggressive (rising fault density).
fn operating_points(kind: BackendKind, memory: MemoryConfig) -> Result<Vec<Backend>, FigureError> {
    Ok(match kind {
        BackendKind::Sram => {
            let model = CellFailureModel::default_28nm();
            [0.85, 0.78, 0.70]
                .iter()
                .map(|&vdd| Ok(Backend::Sram(SramVddBackend::at_vdd(memory, model, vdd)?)))
                .collect::<Result<_, FigureError>>()?
        }
        BackendKind::Dram => [32.0, 64.0, 128.0]
            .iter()
            .map(|&t_ref| {
                Ok(Backend::Dram(DramRetentionBackend::new(
                    memory, t_ref, 45.0,
                )?))
            })
            .collect::<Result<_, FigureError>>()?,
        BackendKind::Mlc => [14.0, 12.0, 10.0]
            .iter()
            .map(|&spacing| Ok(Backend::Mlc(MlcNvmBackend::new(memory, spacing, 86_400.0)?)))
            .collect::<Result<_, FigureError>>()?,
    })
}

fn spec_kinds(spec: &FigureSpec) -> Vec<BackendKind> {
    match spec.backend {
        Some(kind) => vec![kind],
        None => BackendKind::ALL.to_vec(),
    }
}

fn spec_schemes() -> Vec<Scheme> {
    let mut schemes = Scheme::fig5_catalogue();
    schemes.push(Scheme::secded32());
    schemes
}

fn failure_cap(spec: &FigureSpec) -> u64 {
    if spec.full_scale {
        150
    } else {
        100
    }
}

/// One cell of the backend × operating-point matrix, materialised into a
/// catalogue engine with the (identity-free) tuning applied.
fn panel_engines(
    spec: &FigureSpec,
    tuning: EngineTuning,
    parallelism: Parallelism,
) -> Result<Vec<(BackendKind, MonteCarloEngine<Backend>)>, FigureError> {
    let memory = MemoryConfig::paper_16kb();
    let cap = failure_cap(spec);
    let mut engines = Vec::new();
    for kind in spec_kinds(spec) {
        for backend in operating_points(kind, memory)? {
            let backend = match spec.kind_law {
                Some(law) => backend.with_kind_law(law)?,
                None => backend,
            };
            // Simulate up to the 99th-percentile failure count of this
            // operating point, bounded so aggressive corners stay cheap.
            let max_failures = backend.failure_distribution()?.n_max(0.99).clamp(1, cap);
            let engine = MonteCarloEngine::new(
                MonteCarloConfig::for_backend(backend)
                    .with_samples_per_count(spec.samples_per_count)
                    .with_max_failures(max_failures)
                    .with_parallelism(parallelism)
                    .with_kernel(spec.kernel_kind())
                    .with_auto_threshold(tuning.auto_threshold)
                    .with_wide_generation(tuning.wide_generation.unwrap_or(true)),
            );
            engines.push((kind, engine));
        }
    }
    Ok(engines)
}

/// The registered Fig. 8 matrix figure.
pub struct Fig8Def;

impl FigureDef for Fig8Def {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig8_backend_matrix"]
    }

    fn description(&self) -> &'static str {
        "scheme x backend x operating-point memory-MSE matrix"
    }

    fn spec(&self, options: &RunOptions) -> FigureSpec {
        let default_samples = if options.full_scale { 500 } else { 40 };
        FigureSpec {
            figure: self.name().to_owned(),
            // None = sweep every technology (the monolithic default).
            backend: options.backend,
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_samples),
            benchmarks: Vec::new(),
            image: None,
            // None = the paper's always-observable flips; `--kind-law`
            // switches every cell of the matrix to the given behaviour.
            kind_law: options.kind_law,
            kernel: options.kernel,
        }
    }

    fn panel_labels(&self, spec: &FigureSpec) -> Vec<String> {
        spec_kinds(spec)
            .iter()
            .flat_map(|kind| (0..3).map(move |point| format!("{}:op{point}", kind.name())))
            .collect()
    }

    fn words_per_sample(&self, _spec: &FigureSpec) -> Option<u64> {
        Some(MemoryConfig::paper_16kb().rows() as u64)
    }

    fn resolved_kernel(&self, spec: &FigureSpec) -> Option<String> {
        self.resolved_kernel_tuned(spec, EngineTuning::default())
    }

    fn resolved_kernel_tuned(&self, spec: &FigureSpec, tuning: EngineTuning) -> Option<String> {
        // Each operating point of the matrix resolves `auto` at its own
        // density; the telemetry joins the distinct choices.
        let engines = panel_engines(spec, tuning, Parallelism::Serial).ok()?;
        super::kernel_telemetry(
            spec.kernel,
            engines
                .iter()
                .filter_map(|(_, engine)| engine.config().resolved_kernel().ok()),
        )
    }

    fn run_shard(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        Ok(self
            .run_shard_tuned(spec, EngineTuning::default(), parallelism, shard)?
            .panels)
    }

    fn run_shard_tuned(
        &self,
        spec: &FigureSpec,
        tuning: EngineTuning,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<ShardRun, FigureError> {
        let schemes = spec_schemes();
        let scheme_names: Vec<String> = schemes.iter().map(MitigationScheme::name).collect();
        let mut generation_seconds = 0.0;
        let panels = panel_engines(spec, tuning, parallelism)?
            .into_iter()
            .map(|(_, engine)| {
                let (accumulator, stats) =
                    engine.run_catalogue_shard_stats(&schemes, FIG8_SEED, shard)?;
                generation_seconds += stats.generation_seconds;
                Ok(PanelState::Catalogue {
                    scheme_names: scheme_names.clone(),
                    accumulator,
                })
            })
            .collect::<Result<Vec<_>, FigureError>>()?;
        Ok(ShardRun {
            panels,
            generation_seconds: Some(generation_seconds),
        })
    }

    fn render(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let schemes = spec_schemes();
        let engines = panel_engines(spec, EngineTuning::default(), parallelism)?;
        if panels.len() != engines.len() {
            return Err(format!(
                "fig8 expects {} operating-point panels, got {}",
                engines.len(),
                panels.len()
            )
            .into());
        }

        let mut report = String::new();
        writeln!(
            report,
            "Fig. 8 matrix: 16KB memory, {} scheme(s) x {} backend(s) x 3 operating points, \
             {} maps per failure count (counts up to the 99th percentile, capped at {})",
            schemes.len(),
            spec_kinds(spec).len(),
            spec.samples_per_count,
            failure_cap(spec),
        )?;
        if let Some(law) = spec.kind_law {
            writeln!(report, "fault-kind law: {law} (default: flip)")?;
        }

        let mut table = Table::new(
            "Fig. 8 — scheme x backend x operating point (memory MSE)",
            vec![
                "backend".into(),
                "operating point".into(),
                "P_cell".into(),
                "scheme".into(),
                "mean MSE".into(),
                "MSE @ 99% yield".into(),
                "yield @ MSE<1e6".into(),
            ],
        );

        let mut rows = Vec::new();
        for ((kind, engine), panel) in engines.into_iter().zip(panels) {
            let (_, accumulator) = take_catalogue(panel, "fig8")?;
            let op = engine.config().operating_point();
            let p_cell = engine.config().p_cell();
            let results = engine.results_from_state(&schemes, accumulator)?;
            for result in &results {
                let mean = result.cdf.mean().unwrap_or(0.0);
                let at_yield = result.mse_for_yield(0.99);
                let yield_1e6 = result.yield_at_mse(1e6);
                table.add_row(vec![
                    kind.name().to_owned(),
                    op.label(),
                    format_sci(p_cell),
                    result.scheme_name.clone(),
                    format_sci(mean),
                    at_yield.map_or_else(|| "unreachable".to_owned(), format_sci),
                    format_percent(yield_1e6),
                ]);
                rows.push(MatrixRow {
                    backend: kind.name(),
                    operating_point: op.label(),
                    knob: op.primary_value(),
                    p_cell,
                    scheme: result.scheme_name.clone(),
                    mean_mse: mean,
                    mse_at_99pct_yield: at_yield,
                    yield_at_mse_1e6: yield_1e6,
                });
            }
        }
        writeln!(report, "{table}")?;

        Ok(RenderedFigure {
            document: rows.to_json(),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::find_figure;
    use faultmit_memsim::FaultKindLaw;

    #[test]
    fn kind_law_is_part_of_the_spec_identity_and_reaches_the_backends() {
        let figure = find_figure("fig8_backend_matrix").unwrap();
        let default_spec = figure.spec(&RunOptions::default());
        assert_eq!(default_spec.kind_law, None);

        let options = RunOptions::parse(
            [
                "--backend",
                "sram",
                "--samples",
                "2",
                "--kind-law",
                "stuck-at:1",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        let spec = figure.spec(&options);
        assert_eq!(
            spec.kind_law,
            Some(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 1.0
            })
        );
        assert_ne!(spec, figure.spec(&RunOptions::default()));

        // All-stuck-at-0 faults over the matrix's all-zeros background are
        // silent: every scheme's mean MSE collapses to zero, unlike the
        // default flip law.
        let panels = figure
            .run_shard(&spec, Parallelism::Serial, ShardSpec::solo())
            .unwrap();
        let rendered = figure.render(&spec, Parallelism::Serial, panels).unwrap();
        assert!(rendered.report.contains("fault-kind law: stuck-at:1"));
        for row in rendered.document.as_array().unwrap() {
            assert_eq!(
                row.get("mean_mse").and_then(JsonValue::as_f64),
                Some(0.0),
                "stuck-at-0 over zeros must be silent"
            );
        }
    }
}
