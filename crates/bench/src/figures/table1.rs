//! Table 1 — evaluation applications, datasets and quality metrics with
//! the measured fault-free quality of each benchmark (deterministic given
//! the sample budget).

use super::{
    single_panel, take_table, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::Table;
use faultmit_apps::{Benchmark, QualityEvaluator};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

#[derive(Debug)]
struct Table1Row {
    class: String,
    algorithm: String,
    dataset: String,
    metric: String,
    fault_free_quality: f64,
}

impl ToJson for Table1Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("class", self.class.to_json()),
            ("algorithm", self.algorithm.to_json()),
            ("dataset", self.dataset.to_json()),
            ("metric", self.metric.to_json()),
            ("fault_free_quality", self.fault_free_quality.to_json()),
        ])
    }
}

fn class_of(benchmark: Benchmark) -> &'static str {
    match benchmark {
        Benchmark::Elasticnet => "Regression",
        Benchmark::Pca => "Dimensionality Reduction",
        Benchmark::Knn => "Classification",
    }
}

fn compute_rows(spec: &FigureSpec) -> Result<Vec<Table1Row>, FigureError> {
    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let evaluator = QualityEvaluator::builder(benchmark)
            .samples(spec.samples_per_count)
            .memory_rows(1024)
            .build()?;
        let baseline = evaluator.baseline_quality()?;
        rows.push(Table1Row {
            class: class_of(benchmark).to_owned(),
            algorithm: benchmark.name().to_owned(),
            dataset: benchmark.dataset_name().to_owned(),
            metric: benchmark.metric_name().to_owned(),
            fault_free_quality: baseline,
        });
    }
    Ok(rows)
}

/// The registered Table 1 figure.
pub struct Table1Def;

impl FigureDef for Table1Def {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["table1_applications"]
    }

    fn description(&self) -> &'static str {
        "benchmark catalogue with measured fault-free quality (deterministic)"
    }

    fn spec(&self, options: &RunOptions) -> FigureSpec {
        let default_samples = if options.full_scale { 1280 } else { 320 };
        FigureSpec {
            figure: self.name().to_owned(),
            backend: None,
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_samples),
            benchmarks: Vec::new(),
            image: None,
            kind_law: None,
            kernel: None,
        }
    }

    fn panel_labels(&self, _spec: &FigureSpec) -> Vec<String> {
        vec!["table1".to_owned()]
    }

    fn run_shard(
        &self,
        spec: &FigureSpec,
        _parallelism: Parallelism,
        _shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        Ok(vec![PanelState::Table {
            rows: compute_rows(spec)?.to_json(),
        }])
    }

    fn render(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let rows = take_table(single_panel(panels, "table1")?, "table1")?;

        // The baseline evaluation is the whole cost of this figure, so the
        // report is rebuilt from the panel's rows instead of recomputing.
        let mut table = Table::new(
            "Table 1 — evaluation applications and datasets",
            vec![
                "class".into(),
                "algorithm".into(),
                "dataset".into(),
                "metric".into(),
                "fault-free quality".into(),
            ],
        );
        for row in rows.as_array().ok_or("table1 rows must be an array")? {
            let field = |key: &str| -> Result<String, FigureError> {
                Ok(row
                    .get(key)
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("table1 row is missing '{key}'"))?
                    .to_owned())
            };
            let quality = row
                .get("fault_free_quality")
                .and_then(JsonValue::as_f64)
                .ok_or("table1 row is missing 'fault_free_quality'")?;
            table.add_row(vec![
                field("class")?,
                field("algorithm")?,
                field("dataset")?,
                field("metric")?,
                format!("{quality:.4}"),
            ]);
        }

        let mut report = String::new();
        writeln!(report, "{table}")?;

        Ok(RenderedFigure {
            document: rows,
            report,
        })
    }
}
