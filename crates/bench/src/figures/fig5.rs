//! Fig. 5 — CDF of the memory MSE for a 16 kB memory with `P_cell = 5e-6`
//! under the full protection catalogue.

use super::{
    single_panel, take_catalogue, EngineTuning, FigureDef, FigureError, FigureSpec, PanelState,
    RenderedFigure, ShardRun,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_analysis::{
    CatalogueAccumulator, MonteCarloConfig, MonteCarloEngine, SchemeMseResult,
};
use faultmit_core::{MitigationScheme, Scheme};
use faultmit_memsim::{Backend, FaultBackend, MemoryConfig};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

/// The campaign seed baked into the Fig. 5 protocol.
pub const FIG5_SEED: u64 = 0xF165;

/// The materialised Fig. 5 campaign: engine, catalogue and seed, all derived
/// from a [`FigureSpec`].
#[derive(Debug, Clone)]
pub struct Fig5Campaign {
    /// The MSE engine at the figure's memory/backend/budget.
    pub engine: MonteCarloEngine<Backend>,
    /// The Fig. 5 scheme catalogue.
    pub schemes: Vec<Scheme>,
    /// The campaign seed.
    pub seed: u64,
    /// Largest simulated failure count.
    pub max_failures: u64,
}

impl Fig5Campaign {
    /// Builds the campaign for a spec (the spec's figure must be `fig5`).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration errors.
    pub fn from_spec(spec: &FigureSpec, parallelism: Parallelism) -> Result<Self, FigureError> {
        Self::from_spec_tuned(spec, EngineTuning::default(), parallelism)
    }

    /// [`Fig5Campaign::from_spec`] with identity-free engine tuning applied
    /// (results stay bit-identical under any tuning).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration errors.
    pub fn from_spec_tuned(
        spec: &FigureSpec,
        tuning: EngineTuning,
        parallelism: Parallelism,
    ) -> Result<Self, FigureError> {
        assert_eq!(spec.figure, "fig5", "not a Fig. 5 spec");
        // The paper evaluates a 16 KB memory at P_cell = 5e-6 over failure
        // counts 1..150 with 1e7 MC runs; the reduced default keeps the same
        // memory and P_cell with a smaller budget.
        let max_failures = if spec.full_scale { 150 } else { 24 };
        let backend = Backend::at_p_cell(spec.backend_kind(), MemoryConfig::paper_16kb(), 5e-6)?;
        let config = MonteCarloConfig::for_backend(backend)
            .with_samples_per_count(spec.samples_per_count)
            .with_max_failures(max_failures)
            .with_parallelism(parallelism)
            .with_kernel(spec.kernel_kind())
            .with_auto_threshold(tuning.auto_threshold)
            .with_wide_generation(tuning.wide_generation.unwrap_or(true));
        Ok(Self {
            engine: MonteCarloEngine::new(config),
            schemes: Scheme::fig5_catalogue(),
            seed: FIG5_SEED,
            max_failures,
        })
    }

    /// Runs one shard, returning the raw accumulator state.
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard(&self, shard: ShardSpec) -> Result<CatalogueAccumulator, FigureError> {
        Ok(self
            .engine
            .run_catalogue_shard(&self.schemes, self.seed, shard)?)
    }

    /// Runs one shard, returning the accumulator state plus the run's
    /// generation-time telemetry.
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard_stats(
        &self,
        shard: ShardSpec,
    ) -> Result<(CatalogueAccumulator, faultmit_sim::ShardStats), FigureError> {
        Ok(self
            .engine
            .run_catalogue_shard_stats(&self.schemes, self.seed, shard)?)
    }

    /// Reduces (possibly shard-merged) state to per-scheme results.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn results(
        &self,
        state: CatalogueAccumulator,
    ) -> Result<Vec<SchemeMseResult>, FigureError> {
        Ok(self.engine.results_from_state(&self.schemes, state)?)
    }
}

/// One Fig. 5 JSON series (the shape `fig5_mse_cdf --json` has always
/// written).
#[derive(Debug)]
pub struct Fig5Series {
    /// Scheme name.
    pub scheme: String,
    /// `(mse, P(MSE <= mse))` points of the CDF on a log grid.
    pub cdf: Vec<(f64, f64)>,
    /// MSE needed to reach 99.9999 % yield (the paper's example target),
    /// if reachable with the simulated failure-count coverage.
    pub mse_at_six_nines_yield: Option<f64>,
    /// Yield at the paper's example constraint MSE < 10⁶.
    pub yield_at_mse_1e6: f64,
}

impl ToJson for Fig5Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("cdf", self.cdf.to_json()),
            (
                "mse_at_six_nines_yield",
                self.mse_at_six_nines_yield.to_json(),
            ),
            ("yield_at_mse_1e6", self.yield_at_mse_1e6.to_json()),
        ])
    }
}

/// Renders Fig. 5 results into the JSON series of `fig5_mse_cdf --json`.
#[must_use]
pub fn fig5_series(results: &[SchemeMseResult]) -> Vec<Fig5Series> {
    results
        .iter()
        .map(|result| {
            let grid = result.cdf.log_grid(40).unwrap_or_default();
            Fig5Series {
                scheme: result.scheme_name.clone(),
                cdf: result.cdf.evaluate_at(&grid),
                mse_at_six_nines_yield: result.mse_for_yield(0.999_999),
                yield_at_mse_1e6: result.yield_at_mse(1e6),
            }
        })
        .collect()
}

/// The registered Fig. 5 figure.
pub struct Fig5Def;

impl FigureDef for Fig5Def {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig5_mse_cdf"]
    }

    fn description(&self) -> &'static str {
        "memory-MSE CDFs over the die population (16KB, P_cell = 5e-6)"
    }

    fn spec(&self, options: &RunOptions) -> FigureSpec {
        let default_samples = if options.full_scale { 500 } else { 60 };
        FigureSpec {
            figure: self.name().to_owned(),
            backend: Some(options.backend_kind()),
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_samples),
            benchmarks: Vec::new(),
            image: None,
            kind_law: None,
            kernel: options.kernel,
        }
    }

    fn panel_labels(&self, _spec: &FigureSpec) -> Vec<String> {
        vec!["fig5".to_owned()]
    }

    fn words_per_sample(&self, _spec: &FigureSpec) -> Option<u64> {
        Some(MemoryConfig::paper_16kb().rows() as u64)
    }

    fn resolved_kernel(&self, spec: &FigureSpec) -> Option<String> {
        self.resolved_kernel_tuned(spec, EngineTuning::default())
    }

    fn resolved_kernel_tuned(&self, spec: &FigureSpec, tuning: EngineTuning) -> Option<String> {
        let campaign = Fig5Campaign::from_spec_tuned(spec, tuning, Parallelism::Serial).ok()?;
        super::kernel_telemetry(spec.kernel, campaign.engine.config().resolved_kernel().ok())
    }

    fn run_shard(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        Ok(self
            .run_shard_tuned(spec, EngineTuning::default(), parallelism, shard)?
            .panels)
    }

    fn run_shard_tuned(
        &self,
        spec: &FigureSpec,
        tuning: EngineTuning,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<ShardRun, FigureError> {
        let campaign = Fig5Campaign::from_spec_tuned(spec, tuning, parallelism)?;
        let (accumulator, stats) = campaign.run_shard_stats(shard)?;
        Ok(ShardRun {
            panels: vec![PanelState::Catalogue {
                scheme_names: campaign
                    .schemes
                    .iter()
                    .map(MitigationScheme::name)
                    .collect(),
                accumulator,
            }],
            generation_seconds: Some(stats.generation_seconds),
        })
    }

    fn render(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let campaign = Fig5Campaign::from_spec(spec, parallelism)?;
        let (_, accumulator) = take_catalogue(single_panel(panels, "fig5")?, "fig5")?;
        let results = campaign.results(accumulator)?;

        let mut report = String::new();
        writeln!(
            report,
            "Fig. 5 campaign: 16KB memory, backend {} ({}), P_cell = {:.0e}, \
             failure counts 1..={}, {} maps per count",
            campaign.engine.config().backend().name(),
            campaign.engine.config().operating_point().label(),
            campaign.engine.config().p_cell(),
            campaign.max_failures,
            spec.samples_per_count,
        )?;

        let mut table = Table::new(
            "Fig. 5 — MSE that must be tolerated per yield target, and yield at MSE < 1e6",
            vec![
                "scheme".into(),
                "MSE @ 99% yield".into(),
                "MSE @ 99.99% yield".into(),
                "MSE @ 99.9999% yield".into(),
                "yield @ MSE<1e6".into(),
                "yield @ MSE<1e6 (faulty dies)".into(),
            ],
        );
        for result in &results {
            let fmt = |target: f64| {
                result
                    .mse_for_yield(target)
                    .map_or_else(|| "unreachable".to_owned(), format_sci)
            };
            // The paper's Fig. 5 CDF is built from dies with at least one
            // failure (Eq. (5) sums from n = 1), so also report the yield
            // conditioned on faulty dies.
            let zero_mass = result.yield_model.zero_failure_yield();
            let conditional = if zero_mass < 1.0 {
                ((result.yield_at_mse(1e6) - zero_mass) / (1.0 - zero_mass)).clamp(0.0, 1.0)
            } else {
                1.0
            };
            table.add_row(vec![
                result.scheme_name.clone(),
                fmt(0.99),
                fmt(0.9999),
                fmt(0.999_999),
                format_percent(result.yield_at_mse(1e6)),
                format_percent(conditional),
            ]);
        }
        writeln!(report, "{table}")?;

        // Headline claim: ≥30x MSE reduction at equal yield even for nFM=1.
        let unprotected = results
            .iter()
            .find(|r| r.scheme_name == "no-correction")
            .ok_or("catalogue contains the unprotected scheme")?;
        let shuffle1 = results
            .iter()
            .find(|r| r.scheme_name == "bit-shuffle nFM=1")
            .ok_or("catalogue contains nFM=1")?;
        if let (Some(u), Some(s)) = (
            unprotected.mse_for_yield(0.99),
            shuffle1.mse_for_yield(0.99),
        ) {
            writeln!(
                report,
                "MSE reduction at 99% yield, nFM=1 vs no-correction: {:.0}x (paper: >= 30x)",
                u / s.max(f64::MIN_POSITIVE)
            )?;
        }

        Ok(RenderedFigure {
            document: fig5_series(&results).to_json(),
            report,
        })
    }
}
