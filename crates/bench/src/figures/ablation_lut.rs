//! Ablation — FM-LUT realisation and the bit-shuffling write path
//! (deterministic cost model; the redundancy context table is a seeded,
//! deterministic die population).

use super::{
    single_panel, take_table, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::Table;
use faultmit_hwmodel::{LutImplementation, OverheadModel, ProtectionBlock};
use faultmit_memsim::{repair_yield, DieSampler, MemoryConfig, StreamSeeder};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

#[derive(Debug)]
struct WritePathRow {
    scheme: String,
    lut: String,
    energy_fj: f64,
    delay_ps: f64,
}

impl ToJson for WritePathRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("lut", self.lut.to_json()),
            ("energy_fj", self.energy_fj.to_json()),
            ("delay_ps", self.delay_ps.to_json()),
        ])
    }
}

fn compute_series(model: &OverheadModel) -> Vec<WritePathRow> {
    let luts = [
        LutImplementation::ArrayColumns,
        LutImplementation::RegisterFile,
        LutImplementation::Cam { entries: 64 },
    ];
    let blocks = [
        ProtectionBlock::Secded,
        ProtectionBlock::PriorityEcc,
        ProtectionBlock::BitShuffle { n_fm: 1 },
        ProtectionBlock::BitShuffle { n_fm: 5 },
    ];
    let mut series = Vec::new();
    for block in blocks {
        for lut in luts {
            // The LUT choice only matters for bit-shuffling; emit ECC rows
            // once with a dash.
            let is_shuffle = matches!(block, ProtectionBlock::BitShuffle { .. });
            if !is_shuffle && lut != LutImplementation::ArrayColumns {
                continue;
            }
            let cost = model.write_path_cost(block, lut);
            let lut_label = if is_shuffle {
                lut.label()
            } else {
                "-".to_owned()
            };
            series.push(WritePathRow {
                scheme: block.label(),
                lut: lut_label,
                energy_fj: cost.energy_fj,
                delay_ps: cost.delay_ps,
            });
        }
    }
    series
}

/// The registered write-path / FM-LUT ablation.
pub struct AblationLutDef;

impl FigureDef for AblationLutDef {
    fn name(&self) -> &'static str {
        "ablation_lut_write_path"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["ablation_lut", "lut_write_path"]
    }

    fn description(&self) -> &'static str {
        "write-path cost per scheme and FM-LUT realisation (deterministic)"
    }

    fn spec(&self, _options: &RunOptions) -> FigureSpec {
        FigureSpec {
            figure: self.name().to_owned(),
            backend: None,
            full_scale: false,
            samples_per_count: 1,
            benchmarks: Vec::new(),
            image: None,
            kind_law: None,
            kernel: None,
        }
    }

    fn panel_labels(&self, _spec: &FigureSpec) -> Vec<String> {
        vec!["write_path".to_owned()]
    }

    fn words_per_sample(&self, _spec: &FigureSpec) -> Option<u64> {
        Some(1024)
    }

    fn run_shard(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        _shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        let model = OverheadModel::paper_16kb();
        Ok(vec![PanelState::Table {
            rows: compute_series(&model).to_json(),
        }])
    }

    fn render(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let rows = take_table(single_panel(panels, self.name())?, self.name())?;
        let model = OverheadModel::paper_16kb();
        let series = compute_series(&model);
        if rows != series.to_json() {
            return Err(format!(
                "{} shard state does not match the deterministic series",
                self.name()
            )
            .into());
        }

        let mut table = Table::new(
            "Ablation — write-path cost per scheme and FM-LUT realisation (16KB memory)",
            vec![
                "scheme".into(),
                "LUT realisation".into(),
                "write energy (fJ)".into(),
                "write delay (ps)".into(),
            ],
        );
        for row in &series {
            table.add_row(vec![
                row.scheme.clone(),
                row.lut.clone(),
                format!("{:.1}", row.energy_fj),
                format!("{:.1}", row.delay_ps),
            ]);
        }

        let mut report = String::new();
        writeln!(report, "{table}")?;

        // Context: the redundancy baseline's spare-row demand at the same
        // fault densities where bit-shuffling still delivers bounded errors.
        let mut redundancy = Table::new(
            "Context — spare rows needed by classical row redundancy (95% repair yield, 1024-row bank)",
            vec!["P_cell".into(), "spare rows for 95% yield".into()],
        );
        let config = MemoryConfig::new(1024, 32)?;
        for &p_cell in &[1e-5, 1e-4, 1e-3, 5e-3] {
            let sampler = DieSampler::new(config, p_cell)?;
            // Pipeline-style sampling: each die owns an index-derived RNG
            // stream, so the population is independent of iteration order.
            let seeder = StreamSeeder::new(0x5BA9);
            let dies = (0..200)
                .map(|i| sampler.sample_die(&mut seeder.rng_for_sample(i)))
                .collect::<Result<Vec<_>, _>>()?;
            let spares = (0..=1024)
                .find(|&s| repair_yield(&dies, s) >= 0.95)
                .unwrap_or(1024);
            redundancy.add_row(vec![format!("{p_cell:.0e}"), spares.to_string()]);
        }
        writeln!(report, "{redundancy}")?;
        writeln!(
            report,
            "Row redundancy must provision one spare per faulty row, so its cost explodes with P_cell; \
bit-shuffling keeps a constant nFM-column overhead regardless of the fault count."
        )?;

        Ok(RenderedFigure {
            document: rows,
            report,
        })
    }
}
