//! Fig. 6 — read power, read delay and area overhead relative to the
//! H(39,32) SECDED baseline (deterministic analytical 28 nm cost model).

use super::{
    single_panel, take_table, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::Table;
use faultmit_hwmodel::{OverheadModel, ProtectionBlock};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

#[derive(Debug)]
struct Fig6Entry {
    scheme: String,
    relative_read_power: f64,
    relative_read_delay: f64,
    relative_area: f64,
    absolute_energy_fj: f64,
    absolute_delay_ps: f64,
    absolute_area_um2: f64,
}

impl ToJson for Fig6Entry {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("relative_read_power", self.relative_read_power.to_json()),
            ("relative_read_delay", self.relative_read_delay.to_json()),
            ("relative_area", self.relative_area.to_json()),
            ("absolute_energy_fj", self.absolute_energy_fj.to_json()),
            ("absolute_delay_ps", self.absolute_delay_ps.to_json()),
            ("absolute_area_um2", self.absolute_area_um2.to_json()),
        ])
    }
}

fn compute_entries(model: &OverheadModel) -> Vec<Fig6Entry> {
    model
        .fig6_comparison()
        .iter()
        .map(|row| Fig6Entry {
            scheme: row.label.clone(),
            relative_read_power: row.relative.energy,
            relative_read_delay: row.relative.delay,
            relative_area: row.relative.area,
            absolute_energy_fj: row.cost.energy_fj,
            absolute_delay_ps: row.cost.delay_ps,
            absolute_area_um2: row.cost.area_um2,
        })
        .collect()
}

/// The registered Fig. 6 figure.
pub struct Fig6Def;

impl FigureDef for Fig6Def {
    fn name(&self) -> &'static str {
        "fig6"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig6_overhead"]
    }

    fn description(&self) -> &'static str {
        "read power/delay/area overhead vs SECDED (deterministic cost model)"
    }

    fn spec(&self, _options: &RunOptions) -> FigureSpec {
        FigureSpec {
            figure: self.name().to_owned(),
            backend: None,
            full_scale: false,
            samples_per_count: 1,
            benchmarks: Vec::new(),
            image: None,
            kind_law: None,
            kernel: None,
        }
    }

    fn panel_labels(&self, _spec: &FigureSpec) -> Vec<String> {
        vec!["fig6".to_owned()]
    }

    fn run_shard(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        _shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        let model = OverheadModel::paper_16kb();
        Ok(vec![PanelState::Table {
            rows: compute_entries(&model).to_json(),
        }])
    }

    fn render(
        &self,
        _spec: &FigureSpec,
        _parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let rows = take_table(single_panel(panels, "fig6")?, "fig6")?;
        let model = OverheadModel::paper_16kb();
        let entries = compute_entries(&model);
        if rows != entries.to_json() {
            return Err("fig6 shard state does not match the deterministic series".into());
        }

        let mut table = Table::new(
            "Fig. 6 — overhead relative to H(39,32) SECDED (analytical 28nm model, 16KB memory)",
            vec![
                "scheme".into(),
                "read power".into(),
                "read delay".into(),
                "area".into(),
            ],
        );
        for entry in &entries {
            table.add_row(vec![
                entry.scheme.clone(),
                format!("{:.2}", entry.relative_read_power),
                format!("{:.2}", entry.relative_read_delay),
                format!("{:.2}", entry.relative_area),
            ]);
        }

        let mut report = String::new();
        writeln!(report, "{table}")?;

        let savings = model.best_shuffle_savings();
        writeln!(
            report,
            "best bit-shuffling savings vs SECDED: {:.0}% read power, {:.0}% read delay, {:.0}% area",
            savings.energy * 100.0,
            savings.delay * 100.0,
            savings.area * 100.0
        )?;
        writeln!(
            report,
            "paper reports up to 83% read power, 77% read delay and 89% area savings"
        )?;

        let pecc = model.read_path_cost(ProtectionBlock::PriorityEcc);
        let shuffle1 = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm: 1 });
        writeln!(
            report,
            "bit-shuffle nFM=1 vs P-ECC: {:.0}% read power, {:.0}% read delay, {:.0}% area reduction (paper: up to 59% / 64% / 57%)",
            (1.0 - shuffle1.energy_fj / pecc.energy_fj) * 100.0,
            (1.0 - shuffle1.delay_ps / pecc.delay_ps) * 100.0,
            (1.0 - shuffle1.area_um2 / pecc.area_um2) * 100.0,
        )?;

        Ok(RenderedFigure {
            document: rows,
            report,
        })
    }
}
