//! Fig. 7 — CDF of the application quality metric for the data-mining
//! benchmarks under memory failures.

use super::{
    selected_benchmarks, take_catalogue, FigureDef, FigureError, FigureSpec, PanelState,
    RenderedFigure,
};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::report::{format_percent, Table};
use faultmit_analysis::CatalogueAccumulator;
use faultmit_apps::{Benchmark, QualityCdfResult, QualityEvaluator};
use faultmit_core::{MitigationScheme, Scheme};
use faultmit_memsim::{Backend, BackendKind, FaultBackend, MemoryConfig};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt::Write as _;

/// The campaign seed baked into the Fig. 7 protocol.
pub const FIG7_SEED: u64 = 0xF167;

/// The materialised Fig. 7 campaign: per-benchmark evaluators over one
/// shared backend and scheme catalogue, all derived from a [`FigureSpec`].
#[derive(Debug, Clone)]
pub struct Fig7Campaign {
    /// One quality evaluator per benchmark panel, in spec order.
    pub evaluators: Vec<QualityEvaluator>,
    /// The shared fault backend (built at `P_cell = 10⁻³`).
    pub backend: Backend,
    /// The Fig. 7 scheme catalogue.
    pub schemes: Vec<Scheme>,
    /// The campaign seed.
    pub seed: u64,
    /// Largest simulated failure count (99 % die coverage).
    pub max_failures: u64,
    /// Monte-Carlo fault maps per failure count.
    pub samples_per_count: usize,
}

impl Fig7Campaign {
    /// Builds the campaign for a spec (the spec's figure must be `fig7`).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration and evaluator-construction errors.
    pub fn from_spec(spec: &FigureSpec, parallelism: Parallelism) -> Result<Self, FigureError> {
        assert_eq!(spec.figure, "fig7", "not a Fig. 7 spec");
        // The paper: 16 KB memory, P_cell = 1e-3, 500 MC fault maps per
        // failure count; the reduced default keeps the protocol on a smaller
        // bank. Failure counts cover 99 % of the die population either way.
        let (samples, memory_rows) = if spec.full_scale {
            (1280usize, 4096usize)
        } else {
            (200, 512)
        };
        let backend = Backend::at_p_cell(
            spec.backend_kind(),
            MemoryConfig::new(memory_rows, 32)?,
            1e-3,
        )?;
        let max_failures = backend.failure_distribution()?.n_max(0.99);
        let evaluators = spec
            .benchmarks
            .iter()
            .map(|&benchmark| {
                QualityEvaluator::builder(benchmark)
                    .samples(samples)
                    .memory_rows(memory_rows)
                    .parallelism(parallelism)
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            evaluators,
            backend,
            schemes: vec![
                Scheme::unprotected32(),
                Scheme::pecc32(),
                Scheme::shuffle32(1)?,
                Scheme::shuffle32(2)?,
                Scheme::secded32(),
            ],
            seed: FIG7_SEED,
            max_failures,
            samples_per_count: spec.samples_per_count,
        })
    }

    /// Runs one shard of every benchmark panel, returning one accumulator
    /// per panel in spec order.
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard(&self, shard: ShardSpec) -> Result<Vec<CatalogueAccumulator>, FigureError> {
        self.evaluators
            .iter()
            .map(|evaluator| {
                // The paper's protocol discards fault maps with more than
                // one fault per word (bounded redraw).
                Ok(evaluator.quality_shard_on(
                    &self.schemes,
                    &self.backend,
                    self.max_failures,
                    self.samples_per_count,
                    self.seed,
                    true,
                    shard,
                )?)
            })
            .collect()
    }

    /// Reduces one panel's (possibly shard-merged) state to per-scheme
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn results(
        &self,
        panel: usize,
        state: CatalogueAccumulator,
    ) -> Result<Vec<QualityCdfResult>, FigureError> {
        Ok(self.evaluators[panel].quality_results_from_state(
            &self.schemes,
            &self.backend,
            state,
        )?)
    }
}

/// One Fig. 7 JSON series (the shape `fig7_quality --json` has always
/// written).
#[derive(Debug)]
pub struct Fig7Series {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme name.
    pub scheme: String,
    /// Fault-free quality (denominator of the normalisation).
    pub baseline_quality: f64,
    /// `(normalised quality, P(Q <= q))` CDF points.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of dies achieving at least 95 % of the baseline.
    pub yield_at_95pct: f64,
    /// Fraction of dies achieving at least 99 % of the baseline.
    pub yield_at_99pct: f64,
}

impl ToJson for Fig7Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("benchmark", self.benchmark.to_json()),
            ("scheme", self.scheme.to_json()),
            ("baseline_quality", self.baseline_quality.to_json()),
            ("cdf", self.cdf.to_json()),
            ("yield_at_95pct", self.yield_at_95pct.to_json()),
            ("yield_at_99pct", self.yield_at_99pct.to_json()),
        ])
    }
}

/// Renders one benchmark's Fig. 7 results into the JSON series of
/// `fig7_quality --json`.
#[must_use]
pub fn fig7_series(benchmark: Benchmark, results: &[QualityCdfResult]) -> Vec<Fig7Series> {
    results
        .iter()
        .map(|result| {
            let grid: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
            Fig7Series {
                benchmark: benchmark.name().to_owned(),
                scheme: result.scheme_name.clone(),
                baseline_quality: result.baseline_quality,
                cdf: result.cdf.evaluate_at(&grid),
                yield_at_95pct: result.yield_at_min_quality(0.95),
                yield_at_99pct: result.yield_at_min_quality(0.99),
            }
        })
        .collect()
}

/// The registered Fig. 7 figure.
pub struct Fig7Def;

impl FigureDef for Fig7Def {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig7_quality"]
    }

    fn description(&self) -> &'static str {
        "application-quality CDFs per benchmark (16KB, P_cell = 1e-3)"
    }

    fn spec(&self, options: &RunOptions) -> FigureSpec {
        let default_samples = if options.full_scale { 20 } else { 4 };
        FigureSpec {
            figure: self.name().to_owned(),
            backend: Some(options.backend_kind()),
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_samples),
            benchmarks: selected_benchmarks(&options.positional),
            image: None,
            kind_law: None,
            // Quality campaigns evaluate through the apps layer, not the
            // MSE kernels.
            kernel: None,
        }
    }

    fn panel_labels(&self, spec: &FigureSpec) -> Vec<String> {
        spec.benchmarks
            .iter()
            .map(|b| b.name().to_ascii_lowercase())
            .collect()
    }

    fn words_per_sample(&self, spec: &FigureSpec) -> Option<u64> {
        Some(if spec.full_scale { 4096 } else { 512 })
    }

    fn run_shard(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        let campaign = Fig7Campaign::from_spec(spec, parallelism)?;
        let scheme_names: Vec<String> = campaign
            .schemes
            .iter()
            .map(MitigationScheme::name)
            .collect();
        Ok(campaign
            .run_shard(shard)?
            .into_iter()
            .map(|accumulator| PanelState::Catalogue {
                scheme_names: scheme_names.clone(),
                accumulator,
            })
            .collect())
    }

    fn render(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let campaign = Fig7Campaign::from_spec(spec, parallelism)?;
        if panels.len() != spec.benchmarks.len() {
            return Err(format!(
                "fig7 expects {} benchmark panels, got {}",
                spec.benchmarks.len(),
                panels.len()
            )
            .into());
        }

        let mut report = String::new();
        if spec.backend_kind() != BackendKind::Sram {
            writeln!(
                report,
                "note: the paper's multi-fault-word discard is a bounded redraw; the {} backend's \
                 structured fault placement exhausts it at higher fault counts, so multi-fault \
                 words survive and H(39,32) SECDED is NOT an error-free reference here — that \
                 degradation is the technology effect under study.",
                campaign.backend.name()
            )?;
        }

        let mut all_series: Vec<Fig7Series> = Vec::new();
        for (panel, (&benchmark, state)) in spec.benchmarks.iter().zip(panels).enumerate() {
            let (_, accumulator) = take_catalogue(state, "fig7")?;
            let results = campaign.results(panel, accumulator)?;
            let baseline = results
                .first()
                .map(|r| r.baseline_quality)
                .unwrap_or_default();
            writeln!(
                report,
                "\nFig. 7 ({}) — {} on {}, fault-free {} = {:.4}, backend {}, P_cell = {:.0e}",
                match benchmark {
                    Benchmark::Elasticnet => "a",
                    Benchmark::Pca => "b",
                    Benchmark::Knn => "c",
                },
                benchmark.name(),
                benchmark.dataset_name(),
                benchmark.metric_name(),
                baseline,
                campaign.backend.name(),
                campaign.backend.p_cell(),
            )?;

            let mut table = Table::new(
                format!("normalised {} per scheme", benchmark.metric_name()),
                vec![
                    "scheme".into(),
                    "median quality".into(),
                    "1st percentile".into(),
                    "yield @ >=95% of baseline".into(),
                ],
            );
            for result in &results {
                table.add_row(vec![
                    result.scheme_name.clone(),
                    format!("{:.4}", result.cdf.quantile(0.5)),
                    format!("{:.4}", result.cdf.quantile(0.01)),
                    format_percent(result.yield_at_min_quality(0.95)),
                ]);
            }
            writeln!(report, "{table}")?;
            all_series.extend(fig7_series(benchmark, &results));
        }

        Ok(RenderedFigure {
            document: all_series.to_json(),
            report,
        })
    }
}
