//! The declarative figure registry: every campaign-driven binary of this
//! crate is described by a [`FigureDef`] registered under a stable name,
//! and the binaries themselves are thin CLI-parse → registry-lookup →
//! render shims.
//!
//! # Architecture
//!
//! A figure's identity is its [`FigureSpec`] — the resolved, identity-
//! relevant CLI options (backend, scale, sample budget, benchmark panels).
//! The [`FigureDef`] implementation materialises the spec into engines,
//! evaluates any [`faultmit_sim::ShardSpec`] slice of the campaign into one
//! [`PanelState`] per panel, and renders merged panel states into the exact
//! JSON document (and human-readable report) the monolithic binary emits.
//! Because chunk boundaries and per-sample RNG streams derive from the
//! global plan, and panel states serialise/merge losslessly
//! ([`crate::shard`]), a K-shard campaign merged in shard order renders
//! **byte-identical** figure JSON to the monolithic run — for every
//! registered figure.
//!
//! Three process entry points share this module:
//!
//! * the monolithic figure binaries ([`run_monolithic`] — the `0/1` shard);
//! * `campaign_shard` / `campaign_merge` (one shard per process, explicit
//!   merge);
//! * `campaign_run`, the multi-process driver: single-command sharded
//!   execution with bounded retries and checkpoint reuse —
//!
//! ```text
//! campaign_run --figure fig8_backend_matrix --shards 4 --jobs 2 \
//!     --samples 5 --out results/fig8.json
//! ```
//!
//! runs the Fig. 8 campaign as 4 `campaign_shard` child processes (at most
//! 2 at a time), reuses completed shard checkpoints, retries failed
//! shards, then merges and renders `results/fig8.json` byte-identical to
//! `fig8_backend_matrix --samples 5 --json results/fig8.json`.

mod ablation_lut;
mod ablation_shift;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod table1;

pub use fig5::{fig5_series, Fig5Campaign, Fig5Series};
pub use fig7::{fig7_series, Fig7Campaign, Fig7Series};
pub use fig9::{fig9_image_words, Fig9Campaign};

use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::CatalogueAccumulator;
use faultmit_apps::Benchmark;
use faultmit_memsim::{BackendKind, FaultKindLaw, ImageSpec};
use faultmit_sim::{Accumulator, KernelKind, PairedSample, Parallelism, ShardSpec};

/// Errors from figure materialisation, evaluation or rendering.
pub type FigureError = Box<dyn std::error::Error>;

/// Resolves benchmark selectors (`elasticnet`, `pca`, `knn` and their
/// aliases) into [`Benchmark`]s; an empty selector list selects all three.
///
/// Unknown names are reported on stderr and skipped — the behaviour
/// `fig7_quality` has always had.
#[must_use]
pub fn selected_benchmarks(selectors: &[String]) -> Vec<Benchmark> {
    if selectors.is_empty() {
        return Benchmark::ALL.to_vec();
    }
    selectors
        .iter()
        .filter_map(|name| match name.to_ascii_lowercase().as_str() {
            "elasticnet" | "wine" => Some(Benchmark::Elasticnet),
            "pca" | "madelon" => Some(Benchmark::Pca),
            "knn" | "har" | "activity" => Some(Benchmark::Knn),
            other => {
                eprintln!("unknown benchmark '{other}', expected elasticnet|pca|knn");
                None
            }
        })
        .collect()
}

fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    match name.to_ascii_lowercase().as_str() {
        "elasticnet" => Ok(Benchmark::Elasticnet),
        "pca" => Ok(Benchmark::Pca),
        "knn" => Ok(Benchmark::Knn),
        other => Err(format!("unknown benchmark '{other}' in figure spec")),
    }
}

/// The identity of one figure campaign: the registered figure name plus
/// everything identity-relevant the CLI resolved, and nothing derived.
///
/// Two shard files belong to the same campaign exactly when their specs are
/// equal; all derived quantities (memory geometry, seed, `N_max`, scheme
/// catalogue, operating-point grids) are recomputed deterministically from
/// the spec by the figure's [`FigureDef`]. Figures normalise knobs they
/// ignore (a deterministic table records no backend), so equivalent
/// invocations produce equal specs and checkpoint files stay valid across
/// them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureSpec {
    /// Registry name of the figure this campaign belongs to.
    pub figure: String,
    /// Fault-generation technology; `None` means the figure's default
    /// (every technology for `fig8_backend_matrix`, not applicable for
    /// deterministic figures).
    pub backend: Option<BackendKind>,
    /// Paper-scale (`--full`) or reduced configuration.
    pub full_scale: bool,
    /// Monte-Carlo fault maps per failure count (or the figure's sample
    /// budget where no failure-count sweep exists).
    pub samples_per_count: usize,
    /// Benchmark panels (Fig. 7 only; empty elsewhere).
    pub benchmarks: Vec<Benchmark>,
    /// Data image restriction for data-aware campaigns (`fig9`; `None` =
    /// the figure's default image sweep; other figures normalise it away).
    pub image: Option<ImageSpec>,
    /// Fault-kind law override for campaigns that honour one (`fig8`,
    /// `fig9`; `None` = the figure's default; other figures normalise it
    /// away).
    pub kind_law: Option<FaultKindLaw>,
    /// Evaluation kernel for the MSE catalogue campaigns (`fig5`, `fig8`,
    /// `fig9`; `None` = the engine default, event-driven sparse; other
    /// figures normalise it away). Every kernel accumulates bit-identical
    /// state — carrying the choice in the spec makes shard checkpoints
    /// record which kernel produced them.
    pub kernel: Option<KernelKind>,
}

impl FigureSpec {
    /// The backend a single-technology campaign runs on (the paper's SRAM
    /// model when the spec records none).
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.unwrap_or(BackendKind::Sram)
    }

    /// The evaluation kernel a Monte-Carlo campaign runs with (the
    /// engine's sparse default when the spec records none).
    #[must_use]
    pub fn kernel_kind(&self) -> KernelKind {
        self.kernel.unwrap_or_default()
    }

    /// Serialises the spec for embedding in shard-state files.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("figure", self.figure.to_json()),
            (
                "backend",
                match self.backend {
                    None => JsonValue::Null,
                    Some(kind) => kind.name().to_json(),
                },
            ),
            ("full_scale", self.full_scale.to_json()),
            ("samples_per_count", self.samples_per_count.to_json()),
            (
                "benchmarks",
                JsonValue::Array(
                    self.benchmarks
                        .iter()
                        .map(|b| b.name().to_ascii_lowercase().to_json())
                        .collect(),
                ),
            ),
            (
                "image",
                match self.image {
                    None => JsonValue::Null,
                    Some(image) => image.to_string().to_json(),
                },
            ),
            (
                "kind_law",
                match self.kind_law {
                    None => JsonValue::Null,
                    Some(law) => law.to_string().to_json(),
                },
            ),
            (
                "kernel",
                match self.kernel {
                    None => JsonValue::Null,
                    Some(kernel) => kernel.as_str().to_json(),
                },
            ),
        ])
    }

    /// Reads a spec back from shard-state JSON, validating the figure name
    /// against the registry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field, or of
    /// an unregistered figure name.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let figure = value
            .get("figure")
            .and_then(JsonValue::as_str)
            .ok_or("spec is missing 'figure'")?;
        // Registry-aware: resolve aliases to the canonical name and reject
        // figures this build does not know how to merge or render.
        let figure = find_figure(figure)?.name().to_owned();
        let backend = match value.get("backend") {
            None => return Err("spec is missing 'backend'".to_owned()),
            Some(JsonValue::Null) => None,
            Some(node) => Some(
                node.as_str()
                    .ok_or("spec 'backend' must be a string or null")?
                    .parse::<BackendKind>()
                    .map_err(|e| e.to_string())?,
            ),
        };
        let full_scale = value
            .get("full_scale")
            .and_then(JsonValue::as_bool)
            .ok_or("spec is missing 'full_scale'")?;
        let samples_per_count = value
            .get("samples_per_count")
            .and_then(JsonValue::as_u64)
            .ok_or("spec is missing 'samples_per_count'")? as usize;
        let benchmarks = value
            .get("benchmarks")
            .and_then(JsonValue::as_array)
            .ok_or("spec is missing 'benchmarks'")?
            .iter()
            .map(|b| {
                b.as_str()
                    .ok_or_else(|| "benchmark names must be strings".to_owned())
                    .and_then(benchmark_from_name)
            })
            .collect::<Result<Vec<_>, _>>()?;
        // The image/kind-law axes postdate the v2 shard format; absent
        // fields mean the figure's defaults, so pre-existing checkpoints
        // stay valid.
        let image = match value.get("image") {
            None | Some(JsonValue::Null) => None,
            Some(node) => Some(
                node.as_str()
                    .ok_or("spec 'image' must be a string or null")?
                    .parse::<ImageSpec>()
                    .map_err(|e| e.to_string())?,
            ),
        };
        let kind_law = match value.get("kind_law") {
            None | Some(JsonValue::Null) => None,
            Some(node) => Some(
                node.as_str()
                    .ok_or("spec 'kind_law' must be a string or null")?
                    .parse::<FaultKindLaw>()
                    .map_err(|e| e.to_string())?,
            ),
        };
        let kernel = match value.get("kernel") {
            None | Some(JsonValue::Null) => None,
            Some(node) => Some(
                node.as_str()
                    .ok_or("spec 'kernel' must be a string or null")?
                    .parse::<KernelKind>()
                    .map_err(|e| e.to_string())?,
            ),
        };
        Ok(Self {
            figure,
            backend,
            full_scale,
            samples_per_count,
            benchmarks,
            image,
            kind_law,
            kernel,
        })
    }
}

/// Identity-free engine tuning the campaign drivers thread into a figure's
/// engines: knobs that change *how fast* a campaign runs, never *what* it
/// computes, so they are deliberately **not** part of [`FigureSpec`] —
/// checkpoints produced under different tuning merge freely and render
/// byte-identical documents.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineTuning {
    /// Forces the lane-interleaved block generation path on or off
    /// (`--wide-generation`); `None` keeps the engine default (on). Only
    /// block kernels generate through it, and only for backends that opt
    /// in — elsewhere the toggle is inert.
    pub wide_generation: Option<bool>,
    /// Overrides the `auto` kernel's density threshold in expected faults
    /// per row (`--auto-threshold`); `None` keeps
    /// [`faultmit_sim::AUTO_FAULTS_PER_ROW_THRESHOLD`].
    pub auto_threshold: Option<f64>,
}

/// The outcome of one tuned shard evaluation: the panel states plus
/// whatever run telemetry the figure's engines surfaced.
#[derive(Debug)]
pub struct ShardRun {
    /// One state per campaign panel, in panel order.
    pub panels: Vec<PanelState>,
    /// Seconds the shard spent generating dies, summed across panels and
    /// worker threads — `None` for figures whose engines do not time
    /// generation (deterministic tables, figures without the stats hook).
    pub generation_seconds: Option<f64>,
}

/// The accumulated state of one campaign panel inside a shard — the three
/// shapes the registry's figures reduce to.
#[derive(Debug, Clone, PartialEq)]
pub enum PanelState {
    /// Monte-Carlo catalogue state: per-scheme, per-failure-count CDF
    /// sketches (Fig. 5, Fig. 7, Fig. 8).
    Catalogue {
        /// Scheme names in catalogue order (validated across shards).
        scheme_names: Vec<String>,
        /// The shard's accumulator for this panel.
        accumulator: CatalogueAccumulator,
    },
    /// Ordered paired-sample records (ablation campaigns whose reductions
    /// are order-sensitive floating-point sums over the raw stream).
    Records {
        /// Metric names in scheme order (validated across shards).
        metric_names: Vec<String>,
        /// The shard's records, in global sample order.
        records: Vec<PairedSample>,
    },
    /// A deterministic table with no Monte-Carlo content (Fig. 4, Fig. 6,
    /// overhead ablations, Table 1): every shard computes the same rows and
    /// the merge validates their equality.
    Table {
        /// The rendered series rows.
        rows: JsonValue,
    },
}

impl PanelState {
    /// The serialisation tag of this state's shape.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            PanelState::Catalogue { .. } => "catalogue",
            PanelState::Records { .. } => "records",
            PanelState::Table { .. } => "table",
        }
    }

    /// Monte-Carlo samples this state has accumulated — `None` for
    /// deterministic tables, which have no sample stream. Campaign drivers
    /// combine this with the shard's wall clock into `samples/s` telemetry.
    #[must_use]
    pub fn samples_recorded(&self) -> Option<usize> {
        match self {
            PanelState::Catalogue { accumulator, .. } => Some(accumulator.samples_recorded()),
            PanelState::Records { records, .. } => Some(records.len()),
            PanelState::Table { .. } => None,
        }
    }

    /// `true` when two states can merge: same shape and same catalogue /
    /// metric identity (deterministic tables must be equal).
    #[must_use]
    pub fn compatible_with(&self, other: &PanelState) -> bool {
        match (self, other) {
            (
                PanelState::Catalogue { scheme_names, .. },
                PanelState::Catalogue {
                    scheme_names: other_names,
                    ..
                },
            ) => scheme_names == other_names,
            (
                PanelState::Records { metric_names, .. },
                PanelState::Records {
                    metric_names: other_names,
                    ..
                },
            ) => metric_names == other_names,
            (PanelState::Table { rows }, PanelState::Table { rows: other_rows }) => {
                rows == other_rows
            }
            _ => false,
        }
    }

    /// Absorbs the state of the next shard (in shard order).
    ///
    /// # Errors
    ///
    /// Returns a description of the incompatibility (shape or catalogue
    /// mismatch, or deterministic tables that disagree).
    pub fn merge(&mut self, other: PanelState) -> Result<(), String> {
        if !self.compatible_with(&other) {
            return Err(match (&*self, &other) {
                (PanelState::Table { .. }, PanelState::Table { .. }) => {
                    "deterministic table panels disagree between shards".to_owned()
                }
                (a, b) if a.kind_name() == b.kind_name() => format!(
                    "{} panels disagree on the scheme/metric catalogue",
                    a.kind_name()
                ),
                (a, b) => format!(
                    "panel state kinds disagree: '{}' vs '{}'",
                    a.kind_name(),
                    b.kind_name()
                ),
            });
        }
        match (self, other) {
            (
                PanelState::Catalogue { accumulator, .. },
                PanelState::Catalogue {
                    accumulator: other, ..
                },
            ) => {
                accumulator.merge(other);
            }
            (PanelState::Records { records, .. }, PanelState::Records { records: other, .. }) => {
                records.extend(other);
            }
            // Equal tables: keep the existing copy.
            (PanelState::Table { .. }, PanelState::Table { .. }) => {}
            _ => unreachable!("compatible_with rejects mixed kinds"),
        }
        Ok(())
    }
}

/// Unwraps a catalogue panel (render-side helper).
pub(crate) fn take_catalogue(
    panel: PanelState,
    figure: &str,
) -> Result<(Vec<String>, CatalogueAccumulator), FigureError> {
    match panel {
        PanelState::Catalogue {
            scheme_names,
            accumulator,
        } => Ok((scheme_names, accumulator)),
        other => Err(format!(
            "{figure} expects catalogue panel state, found '{}'",
            other.kind_name()
        )
        .into()),
    }
}

/// Unwraps a records panel (render-side helper).
pub(crate) fn take_records(
    panel: PanelState,
    figure: &str,
) -> Result<(Vec<String>, Vec<PairedSample>), FigureError> {
    match panel {
        PanelState::Records {
            metric_names,
            records,
        } => Ok((metric_names, records)),
        other => Err(format!(
            "{figure} expects records panel state, found '{}'",
            other.kind_name()
        )
        .into()),
    }
}

/// Unwraps a deterministic table panel (render-side helper).
pub(crate) fn take_table(panel: PanelState, figure: &str) -> Result<JsonValue, FigureError> {
    match panel {
        PanelState::Table { rows } => Ok(rows),
        other => Err(format!(
            "{figure} expects table panel state, found '{}'",
            other.kind_name()
        )
        .into()),
    }
}

/// Unwraps the single panel of a one-panel figure.
pub(crate) fn single_panel(
    mut panels: Vec<PanelState>,
    figure: &str,
) -> Result<PanelState, FigureError> {
    if panels.len() != 1 {
        return Err(format!("{figure} expects exactly one panel, got {}", panels.len()).into());
    }
    Ok(panels.remove(0))
}

/// The rendered outcome of a figure campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RenderedFigure {
    /// The machine-readable series — the bytes of the binary's historical
    /// `--json` output come from `document.to_pretty_string()`.
    pub document: JsonValue,
    /// The human-readable report the monolithic binary prints to stdout.
    pub report: String,
}

/// One figure of the registry: how to resolve its campaign spec from CLI
/// options, evaluate any shard of it, and render merged state into the
/// exact document the monolithic binary emits.
///
/// Implementations must uphold the registry's invariant: for any shard
/// count K, the [`PanelState`]s of shards `0..K` merged in shard order are
/// bit-identical to the `0/1` shard's state, so [`FigureDef::render`]
/// produces byte-identical documents either way.
pub trait FigureDef: Sync {
    /// Canonical registry name (also the binary's name where one exists).
    fn name(&self) -> &'static str;

    /// Additional accepted lookup names.
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description (shown by `campaign_run --figure list`).
    fn description(&self) -> &'static str;

    /// Resolves CLI options into the campaign's identity, applying the
    /// figure's defaults and normalising options the figure ignores.
    fn spec(&self, options: &RunOptions) -> FigureSpec;

    /// Labels of the campaign panels a shard evaluates, in panel order.
    fn panel_labels(&self, spec: &FigureSpec) -> Vec<String>;

    /// Memory words each Monte-Carlo sample evaluates under this spec, for
    /// `words/s` throughput telemetry. `None` (the default) for figures
    /// without a meaningful per-sample word count (deterministic tables).
    fn words_per_sample(&self, spec: &FigureSpec) -> Option<u64> {
        let _ = spec;
        None
    }

    /// The kernel telemetry a shard checkpoint of this figure records
    /// under `spec` — the kernel that actually executes. The default
    /// reports the spec's kernel name verbatim; the MSE catalogue figures
    /// override it so `--kernel auto` records the density-resolved choice
    /// (`"auto:sparse"` / `"auto:bitsliced256"`), letting merges verify
    /// every shard resolved identically.
    fn resolved_kernel(&self, spec: &FigureSpec) -> Option<String> {
        spec.kernel.map(|kernel| kernel.as_str().to_owned())
    }

    /// Evaluates one shard of every panel, in panel order.
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration, evaluator-construction and campaign
    /// errors.
    fn run_shard(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError>;

    /// [`FigureDef::run_shard`] with [`EngineTuning`] applied and run
    /// telemetry surfaced. The default ignores the tuning and reports no
    /// generation time — correct for figures without campaign engines; the
    /// MSE catalogue figures override it. Tuning never changes panel
    /// states: for any tuning, the returned panels are bit-identical to
    /// [`FigureDef::run_shard`]'s.
    ///
    /// # Errors
    ///
    /// Same contract as [`FigureDef::run_shard`].
    fn run_shard_tuned(
        &self,
        spec: &FigureSpec,
        tuning: EngineTuning,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<ShardRun, FigureError> {
        let _ = tuning;
        Ok(ShardRun {
            panels: self.run_shard(spec, parallelism, shard)?,
            generation_seconds: None,
        })
    }

    /// [`FigureDef::resolved_kernel`] under [`EngineTuning`] — the
    /// telemetry must reflect an `--auto-threshold` override, since the
    /// override can flip which kernel `auto` resolves to. The default
    /// ignores the tuning (correct for figures whose telemetry never says
    /// `auto:`); the MSE catalogue figures override it.
    fn resolved_kernel_tuned(&self, spec: &FigureSpec, tuning: EngineTuning) -> Option<String> {
        let _ = tuning;
        self.resolved_kernel(spec)
    }

    /// Renders merged panel states into the figure's document and report.
    ///
    /// # Errors
    ///
    /// Returns an error when the panel states do not match the spec's
    /// panels, or when reduction fails.
    fn render(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError>;
}

/// Every registered figure, in catalogue order.
#[must_use]
pub fn registry() -> &'static [&'static dyn FigureDef] {
    static REGISTRY: [&dyn FigureDef; 9] = [
        &fig4::Fig4Def,
        &fig5::Fig5Def,
        &fig6::Fig6Def,
        &fig7::Fig7Def,
        &fig8::Fig8Def,
        &fig9::Fig9Def,
        &ablation_lut::AblationLutDef,
        &ablation_shift::AblationShiftDef,
        &table1::Table1Def,
    ];
    &REGISTRY
}

/// Looks a figure up by canonical name or alias (case-insensitive).
///
/// # Errors
///
/// Returns a message listing every registered name.
pub fn find_figure(name: &str) -> Result<&'static dyn FigureDef, String> {
    let wanted = name.to_ascii_lowercase();
    registry()
        .iter()
        .copied()
        .find(|figure| {
            figure.name() == wanted || figure.aliases().iter().any(|alias| *alias == wanted)
        })
        .ok_or_else(|| {
            let known: Vec<&str> = registry().iter().map(|f| f.name()).collect();
            format!(
                "unknown figure '{name}', expected one of: {}",
                known.join(", ")
            )
        })
}

/// Formats the checkpoint kernel telemetry for a campaign's configured
/// kernel and the fixed kernels its panels actually execute: fixed kernels
/// report their own name, `auto` reports `"auto:<resolved>"` (with `+`
/// joining the distinct choices of a multi-panel figure whose operating
/// points resolve differently). The resolution is a pure function of the
/// campaign spec, so every shard of a campaign records the same string —
/// the invariant [`crate::shard::ShardState::merge`] verifies.
pub(crate) fn kernel_telemetry<I>(kernel: Option<KernelKind>, resolved: I) -> Option<String>
where
    I: IntoIterator<Item = KernelKind>,
{
    let kernel = kernel?;
    if kernel != KernelKind::Auto {
        return Some(kernel.as_str().to_owned());
    }
    let mut names: Vec<&'static str> = Vec::new();
    for choice in resolved {
        if !names.contains(&choice.as_str()) {
            names.push(choice.as_str());
        }
    }
    if names.is_empty() {
        return Some(kernel.as_str().to_owned());
    }
    Some(format!("auto:{}", names.join("+")))
}

/// Rejects campaign-identity flags (`--image`/`--kind-law`) that the
/// resolved spec does not carry: a figure that normalises the flag away
/// would silently run a different campaign than the one the user asked
/// for — the same policy an unparseable value already gets.
///
/// # Errors
///
/// Returns a message naming the unsupported flag and the figure.
pub fn check_identity_flags(spec: &FigureSpec, options: &RunOptions) -> Result<(), FigureError> {
    if options.image.is_some() && spec.image != options.image {
        return Err(format!(
            "figure '{}' does not support --image (only fig9_data_sensitivity evaluates \
             data images)",
            spec.figure
        )
        .into());
    }
    if options.kind_law.is_some() && spec.kind_law != options.kind_law {
        return Err(format!(
            "figure '{}' does not support --kind-law (fig8_backend_matrix and \
             fig9_data_sensitivity do)",
            spec.figure
        )
        .into());
    }
    if options.kernel.is_some() && spec.kernel != options.kernel {
        return Err(format!(
            "figure '{}' does not support --kernel (the MSE catalogue campaigns \
             fig5_mse_cdf, fig8_backend_matrix and fig9_data_sensitivity do)",
            spec.figure
        )
        .into());
    }
    Ok(())
}

/// Rejects an inconsistent engine-tuning request: `--auto-threshold`
/// re-tunes the `auto` kernel's density resolution, so it is meaningless —
/// and silently inert — under any other `--kernel` choice.
/// (`--wide-generation` needs no such check: it is accepted everywhere and
/// simply inert for campaigns without block-kernel generation.)
///
/// # Errors
///
/// Returns a message naming the missing `--kernel auto`.
pub fn check_tuning_flags(options: &RunOptions) -> Result<(), FigureError> {
    if options.auto_threshold.is_some() && options.kernel != Some(KernelKind::Auto) {
        return Err(
            "--auto-threshold requires --kernel auto (it overrides the auto \
                    kernel's faults-per-row density threshold)"
                .into(),
        );
    }
    Ok(())
}

/// The shared main body of every monolithic figure binary: parse the
/// process arguments, run the figure's whole campaign as the `0/1` shard,
/// print the report and write the `--json` document.
///
/// # Errors
///
/// Propagates figure evaluation and I/O errors.
pub fn run_monolithic(name: &str) -> Result<(), FigureError> {
    let options = RunOptions::from_args();
    let figure = find_figure(name)?;
    // A typo in a campaign-identity flag (--image/--kind-law) must not
    // silently run a different campaign than the one the user asked for —
    // and a typo in a tuning flag must not silently run a different tuning.
    if !options.spec_flag_errors.is_empty() {
        return Err(options.spec_flag_errors.join("; ").into());
    }
    if !options.tuning_flag_errors.is_empty() {
        return Err(options.tuning_flag_errors.join("; ").into());
    }
    check_tuning_flags(&options)?;
    let spec = figure.spec(&options);
    check_identity_flags(&spec, &options)?;
    // The metrics recorder is installed only when --metrics asks for a
    // report: panel states never read metrics, so the figure JSON is
    // byte-identical either way, and the default run records nothing.
    let recorder = options
        .metrics_path
        .as_ref()
        .map(|_| std::sync::Arc::new(faultmit_obs::Recorder::new()));
    let guard = recorder.as_ref().map(faultmit_obs::install);
    let started = std::time::Instant::now();
    let run = figure.run_shard_tuned(
        &spec,
        options.tuning(),
        options.parallelism(),
        ShardSpec::solo(),
    )?;
    let elapsed_seconds = started.elapsed().as_secs_f64();
    drop(guard);
    let rendered = figure.render(&spec, options.parallelism(), run.panels)?;
    print!("{}", rendered.report);
    if let Some(generation_seconds) = run.generation_seconds {
        println!("generation time: {generation_seconds:.2}s CPU across all workers");
    }
    options.write_json(&rendered.document)?;
    if let Some(recorder) = recorder {
        let metrics = crate::metrics::ShardMetrics {
            elapsed_seconds: Some(elapsed_seconds),
            generation_seconds: run.generation_seconds,
            kernel: figure.resolved_kernel_tuned(&spec, options.tuning()),
            auto_threshold: options.auto_threshold,
            snapshot: Some(recorder.snapshot()),
        };
        options.write_metrics(&metrics)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for figure in registry() {
            assert!(seen.insert(figure.name()), "duplicate {}", figure.name());
            assert_eq!(find_figure(figure.name()).unwrap().name(), figure.name());
            for alias in figure.aliases() {
                assert_eq!(find_figure(alias).unwrap().name(), figure.name());
            }
            assert!(!figure.description().is_empty());
        }
        assert_eq!(seen.len(), 9);
        let Err(message) = find_figure("fig99") else {
            panic!("fig99 must not resolve");
        };
        assert!(message.contains("fig5"), "{message}");
    }

    #[test]
    fn aliases_cover_the_binary_names() {
        for name in [
            "fig4_error_magnitude",
            "fig5_mse_cdf",
            "fig6_overhead",
            "fig7_quality",
            "fig8_backend_matrix",
            "fig9_data_sensitivity",
            "ablation_lut_write_path",
            "ablation_shift_policy",
            "table1_applications",
        ] {
            assert!(find_figure(name).is_ok(), "binary name {name} unresolved");
        }
        // Case-insensitive.
        assert_eq!(find_figure("FIG5").unwrap().name(), "fig5");
    }

    #[test]
    fn benchmark_selection_matches_fig7_behaviour() {
        assert_eq!(selected_benchmarks(&[]), Benchmark::ALL.to_vec());
        assert_eq!(
            selected_benchmarks(&["knn".to_owned(), "wine".to_owned()]),
            vec![Benchmark::Knn, Benchmark::Elasticnet]
        );
        assert!(selected_benchmarks(&["bogus".to_owned()]).is_empty());
    }

    #[test]
    fn specs_round_trip_through_json_for_every_figure() {
        let options = RunOptions::parse(
            ["--backend", "dram", "--samples", "7", "pca"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        for figure in registry() {
            let spec = figure.spec(&options);
            assert_eq!(spec.figure, figure.name());
            let parsed = FigureSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(parsed, spec, "{}", figure.name());
            // Panel labels derive deterministically from the spec.
            let labels = figure.panel_labels(&spec);
            assert!(!labels.is_empty(), "{}", figure.name());
            assert_eq!(labels, figure.panel_labels(&spec));
        }
        assert!(FigureSpec::from_json(&JsonValue::Null).is_err());
        // Unregistered figure names are rejected by the loader.
        let mut doc = registry()[0].spec(&RunOptions::default()).to_json();
        if let JsonValue::Object(fields) = &mut doc {
            fields[0].1 = JsonValue::String("fig99".to_owned());
        }
        assert!(FigureSpec::from_json(&doc).is_err());
    }

    #[test]
    fn identity_flags_are_rejected_by_figures_that_ignore_them() {
        let image = RunOptions::parse(["--image", "ones"].iter().map(|s| (*s).to_owned()));
        let law = RunOptions::parse(
            ["--kind-law", "stuck-at:0.9"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        let kernel = RunOptions::parse(["--kernel", "bitsliced"].iter().map(|s| (*s).to_owned()));
        for figure in registry() {
            let supports_image = figure.name() == "fig9";
            let supports_law = matches!(figure.name(), "fig8" | "fig9");
            let supports_kernel = matches!(figure.name(), "fig5" | "fig8" | "fig9");
            let image_check = check_identity_flags(&figure.spec(&image), &image);
            assert_eq!(
                image_check.is_ok(),
                supports_image,
                "{}: --image acceptance",
                figure.name()
            );
            let law_check = check_identity_flags(&figure.spec(&law), &law);
            assert_eq!(
                law_check.is_ok(),
                supports_law,
                "{}: --kind-law acceptance",
                figure.name()
            );
            let kernel_check = check_identity_flags(&figure.spec(&kernel), &kernel);
            assert_eq!(
                kernel_check.is_ok(),
                supports_kernel,
                "{}: --kernel acceptance",
                figure.name()
            );
        }
        // No flags: nothing to reject anywhere.
        let plain = RunOptions::default();
        for figure in registry() {
            assert!(check_identity_flags(&figure.spec(&plain), &plain).is_ok());
        }
    }

    #[test]
    fn panel_states_merge_by_kind_and_reject_mismatches() {
        let sample = |index: u64, metrics: &[f64]| PairedSample {
            sample_index: index,
            n_faults: 1,
            weight: 0.5,
            metrics: metrics.to_vec(),
        };

        // Catalogue merging folds accumulators.
        let mut a0 = CatalogueAccumulator::new(1);
        a0.record(&sample(0, &[1.0]));
        let mut a1 = CatalogueAccumulator::new(1);
        a1.record(&sample(1, &[2.0]));
        let mut merged = PanelState::Catalogue {
            scheme_names: vec!["s".into()],
            accumulator: a0,
        };
        merged
            .merge(PanelState::Catalogue {
                scheme_names: vec!["s".into()],
                accumulator: a1,
            })
            .unwrap();
        if let PanelState::Catalogue { accumulator, .. } = &merged {
            assert_eq!(accumulator.samples_recorded(), 2);
        } else {
            unreachable!()
        }
        assert!(merged
            .clone()
            .merge(PanelState::Catalogue {
                scheme_names: vec!["other".into()],
                accumulator: CatalogueAccumulator::new(1),
            })
            .is_err());

        // Records merging concatenates in shard order.
        let mut records = PanelState::Records {
            metric_names: vec!["naive".into(), "optimal".into()],
            records: vec![sample(0, &[1.0, 0.5])],
        };
        records
            .merge(PanelState::Records {
                metric_names: vec!["naive".into(), "optimal".into()],
                records: vec![sample(1, &[2.0, 1.5])],
            })
            .unwrap();
        if let PanelState::Records { records, .. } = &records {
            assert_eq!(
                records.iter().map(|r| r.sample_index).collect::<Vec<_>>(),
                vec![0, 1]
            );
        } else {
            unreachable!()
        }

        // Tables must agree; kinds must match.
        let table = || PanelState::Table {
            rows: JsonValue::Array(vec![JsonValue::Number(1.0)]),
        };
        let mut t = table();
        t.merge(table()).unwrap();
        assert!(t
            .merge(PanelState::Table {
                rows: JsonValue::Array(vec![]),
            })
            .is_err());
        assert!(t.merge(records.clone()).is_err());
    }
}
