//! Ablation — FM-LUT shift-selection policy for rows with multiple faults,
//! as a paired campaign over raw record streams.

use super::{take_records, FigureDef, FigureError, FigureSpec, PanelState, RenderedFigure};
use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::memory_mse;
use faultmit_analysis::report::{format_sci, Table};
use faultmit_core::{
    rotate_left, rotate_right, MitigationScheme, ObservedWord, Scheme, SegmentGeometry,
};
use faultmit_memsim::{corrupt_word, Backend, FaultMap, MemoryConfig};
use faultmit_sim::{
    Campaign, CampaignConfig, CollectRecords, PairedSample, Parallelism, ShardSpec,
};
use std::fmt::Write as _;

/// The campaign seed baked into the shift-policy ablation.
pub const ABLATION_SHIFT_SEED: u64 = 0xAB1A;

#[derive(Debug)]
struct AblationRow {
    n_fm: usize,
    faults_per_map: usize,
    mse_naive: f64,
    mse_optimal: f64,
    improvement_factor: f64,
}

impl ToJson for AblationRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("n_fm", self.n_fm.to_json()),
            ("faults_per_map", self.faults_per_map.to_json()),
            ("mse_naive", self.mse_naive.to_json()),
            ("mse_optimal", self.mse_optimal.to_json()),
            ("improvement_factor", self.improvement_factor.to_json()),
        ])
    }
}

/// Bit-shuffling with the naive multi-fault policy: align the least
/// significant segment to the most significant faulty cell.
#[derive(Debug, Clone, Copy)]
struct NaiveShuffle(SegmentGeometry);

impl MitigationScheme for NaiveShuffle {
    fn name(&self) -> String {
        format!("naive bit-shuffle nFM={}", self.0.n_fm())
    }

    fn word_bits(&self) -> usize {
        self.0.word_bits()
    }

    fn observe(&self, faults: &FaultMap, row: usize, written: u64) -> ObservedWord {
        let columns = faults.faulty_columns(row);
        let Some(&msb_fault) = columns.last() else {
            return ObservedWord::intact(written);
        };
        let x_fm = self.0.segment_of_bit(msb_fault);
        let shift = self
            .0
            .shift_amount(x_fm)
            .expect("segment index is in range");
        let mut stored = rotate_right(written, shift, self.0.word_bits());
        for col in columns {
            if let Some(kind) = faults.fault_at(row, col) {
                stored = corrupt_word(stored, col, kind);
            }
        }
        ObservedWord {
            value: rotate_left(stored, shift, self.0.word_bits()),
            reliable: true,
        }
    }

    fn worst_case_error_magnitude(&self, _bit: usize) -> u64 {
        self.0.max_error_magnitude()
    }

    fn extra_bits_per_row(&self) -> usize {
        self.0.n_fm()
    }
}

/// The ablation's sweep grid: `(n_fm, faults_per_map)` points in panel
/// order, derived from the spec's scale.
fn sweep_points(spec: &FigureSpec) -> Vec<(usize, usize)> {
    let rows = memory_rows(spec);
    let mut points = Vec::new();
    for n_fm in [1usize, 2, 3, 5] {
        // Fault densities high enough that multi-fault rows actually occur.
        for faults_per_map in [rows / 8, rows / 2, rows] {
            points.push((n_fm, faults_per_map));
        }
    }
    points
}

fn memory_rows(spec: &FigureSpec) -> usize {
    if spec.full_scale {
        4096
    } else {
        512
    }
}

/// The paired `(naive, optimal)` campaign of one sweep point.
fn point_campaign(
    spec: &FigureSpec,
    parallelism: Parallelism,
    faults_per_map: usize,
) -> Result<Campaign<Backend>, FigureError> {
    let config = MemoryConfig::new(memory_rows(spec), 32)?;
    // The `--backend` axis swaps the fault technology: the shift policies
    // face the same clustered / level-biased maps.
    let backend = Backend::at_p_cell(spec.backend_kind(), config, 1e-3)?;
    Ok(Campaign::new(
        CampaignConfig::for_backend(backend)?
            .with_samples_per_count(spec.samples_per_count)
            .with_exact_failures(faults_per_map as u64)
            .with_parallelism(parallelism),
    ))
}

/// The registered shift-policy ablation.
pub struct AblationShiftDef;

impl FigureDef for AblationShiftDef {
    fn name(&self) -> &'static str {
        "ablation_shift_policy"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["ablation_shift", "shift_policy"]
    }

    fn description(&self) -> &'static str {
        "naive vs optimal FM-LUT shift policy on multi-fault rows (paired MSE)"
    }

    fn spec(&self, options: &RunOptions) -> FigureSpec {
        let default_maps = if options.full_scale { 400 } else { 60 };
        FigureSpec {
            figure: self.name().to_owned(),
            backend: Some(options.backend_kind()),
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_maps),
            benchmarks: Vec::new(),
            image: None,
            kind_law: None,
            kernel: None,
        }
    }

    fn panel_labels(&self, spec: &FigureSpec) -> Vec<String> {
        sweep_points(spec)
            .into_iter()
            .map(|(n_fm, faults)| format!("nFM={n_fm} faults={faults}"))
            .collect()
    }

    fn words_per_sample(&self, spec: &FigureSpec) -> Option<u64> {
        Some(memory_rows(spec) as u64)
    }

    fn run_shard(
        &self,
        spec: &FigureSpec,
        parallelism: Parallelism,
        shard: ShardSpec,
    ) -> Result<Vec<PanelState>, FigureError> {
        sweep_points(spec)
            .into_iter()
            .map(|(n_fm, faults_per_map)| {
                let geometry = SegmentGeometry::new(32, n_fm)?;
                // Paired pipeline pass: both policies score identical dies.
                let naive = NaiveShuffle(geometry);
                let optimal = Scheme::BitShuffle(geometry);
                let schemes: [&(dyn MitigationScheme + Sync); 2] = [&naive, &optimal];
                let campaign = point_campaign(spec, parallelism, faults_per_map)?;
                let collected = campaign.run_shard(
                    &schemes,
                    ABLATION_SHIFT_SEED,
                    shard,
                    memory_mse,
                    CollectRecords::new,
                )?;
                Ok(PanelState::Records {
                    metric_names: schemes.iter().map(|s| s.name()).collect(),
                    records: collected.records,
                })
            })
            .collect()
    }

    fn render(
        &self,
        spec: &FigureSpec,
        _parallelism: Parallelism,
        panels: Vec<PanelState>,
    ) -> Result<RenderedFigure, FigureError> {
        let points = sweep_points(spec);
        if panels.len() != points.len() {
            return Err(format!(
                "{} expects {} sweep-point panels, got {}",
                self.name(),
                points.len(),
                panels.len()
            )
            .into());
        }

        let mut table = Table::new(
            "Ablation — multi-fault shift policy (memory MSE, lower is better)",
            vec![
                "nFM".into(),
                "faults/map".into(),
                "naive (align to MSB fault)".into(),
                "optimal (exhaustive search)".into(),
                "improvement".into(),
            ],
        );
        let mut series = Vec::new();
        for ((n_fm, faults_per_map), panel) in points.into_iter().zip(panels) {
            let (metric_names, records): (_, Vec<PairedSample>) = take_records(panel, self.name())?;
            // Shard files are untrusted input: the paired reduction below
            // indexes two metrics per record.
            if metric_names.len() != 2 || records.iter().any(|r| r.metrics.len() != 2) {
                return Err(format!(
                    "{} expects exactly the (naive, optimal) metric pair, found {:?}",
                    self.name(),
                    metric_names
                )
                .into());
            }
            let count = records.len().max(1) as f64;
            let mse_naive = records.iter().map(|r| r.metrics[0]).sum::<f64>() / count;
            let mse_optimal = records.iter().map(|r| r.metrics[1]).sum::<f64>() / count;
            // Paired invariant: the optimal policy includes the naive shift
            // in its search space, so it can never lose on any single die.
            debug_assert!(records.iter().all(|r| r.metrics[1] <= r.metrics[0] + 1e-9));

            table.add_row(vec![
                n_fm.to_string(),
                faults_per_map.to_string(),
                format_sci(mse_naive),
                format_sci(mse_optimal),
                format!("{:.2}x", mse_naive / mse_optimal.max(f64::MIN_POSITIVE)),
            ]);
            series.push(AblationRow {
                n_fm,
                faults_per_map,
                mse_naive,
                mse_optimal,
                improvement_factor: mse_naive / mse_optimal.max(f64::MIN_POSITIVE),
            });
        }

        let mut report = String::new();
        writeln!(report, "{table}")?;
        writeln!(
            report,
            "The optimal policy never loses to the naive one (it includes it in its search space); \
the gap widens as rows accumulate several faults."
        )?;

        Ok(RenderedFigure {
            document: series.to_json(),
            report,
        })
    }
}
