//! Serializable shard state for distributed campaigns, covering every
//! accumulator shape the figure registry produces.
//!
//! A `campaign_shard` process evaluates one [`ShardSpec`] slice of a
//! registered figure campaign and writes its per-panel
//! [`PanelState`]s to disk as a [`ShardState`] JSON document;
//! `campaign_merge` (or the `campaign_run` driver) reads the shard files
//! back, folds their panels **in shard order** and renders the figure.
//! Because
//!
//! 1. chunk boundaries and per-sample RNG streams derive from the global
//!    plan (see [`faultmit_sim::Campaign::try_run_shard`]),
//! 2. catalogue state stores each [`CdfSketch`]'s raw `(value, weight)`
//!    observation list in insertion order and re-accumulates it on read
//!    ([`CdfSketch::from_observations`]), record state stores the raw
//!    [`PairedSample`] stream in global sample order, and deterministic
//!    table state is validated for equality across shards, and
//! 3. the in-tree JSON emitter prints every finite `f64` in its shortest
//!    round-trippable form (sole exception: `-0.0` normalises to `+0.0`,
//!    which no downstream reduction can distinguish — see the `json`
//!    module docs),
//!
//! the merged state — and therefore the rendered figure JSON — is
//! **byte-identical** to the monolithic single-process run for every
//! registered figure, backend and worker count.
//!
//! A completed shard file doubles as a checkpoint: `campaign_shard` skips
//! work when its output file already holds a state whose
//! [`ShardState::matches`] its request, so re-running a partially finished
//! K-shard campaign recomputes only the missing shards.

use crate::figures::{FigureSpec, PanelState};
use crate::json::{JsonValue, ToJson};
use crate::metrics::ShardMetrics;
use faultmit_analysis::{CatalogueAccumulator, CdfSketch, EmpiricalCdf};
use faultmit_sim::{PairedSample, ShardSpec};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Format tag of shard-state documents (bump on incompatible changes).
///
/// `v2` replaced the fig5/fig7-only `v1` layout with the registry's
/// panel-state union (catalogue / records / table); `v3` folded the four
/// ad-hoc telemetry fields (`elapsed_seconds`, `kernel`,
/// `generation_seconds`, `auto_threshold`) into one `metrics` section that
/// also carries the observability snapshot. `v2` files still load — see
/// [`ShardState::from_json`].
pub const SHARD_STATE_FORMAT: &str = "faultmit-shard-state/v3";

/// The previous format tag, still accepted by the loader: its top-level
/// telemetry fields are folded into [`ShardState::metrics`] on read.
pub const SHARD_STATE_FORMAT_V2: &str = "faultmit-shard-state/v2";

/// Error reading or merging shard state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStateError {
    /// What went wrong.
    pub reason: String,
}

impl ShardStateError {
    fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ShardStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard state error: {}", self.reason)
    }
}

impl std::error::Error for ShardStateError {}

/// One labelled campaign panel inside a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPanelState {
    /// Panel label (`"fig5"`, a benchmark name, an operating-point cell,
    /// an ablation sweep point, …).
    pub label: String,
    /// The shard's accumulated state for this panel.
    pub state: PanelState,
}

/// One shard's complete serialisable state: the campaign identity, the
/// shard coordinates, and one panel state per campaign panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Identity of the figure campaign the shard belongs to.
    pub spec: FigureSpec,
    /// Which slice of the campaign this state covers.
    pub shard: ShardSpec,
    /// Per-panel state, in panel order.
    pub panels: Vec<ShardPanelState>,
    /// The shard's telemetry section — wall/generation clocks, kernel
    /// identity, the `--auto-threshold` override and the observability
    /// snapshot (see [`ShardMetrics`]). Never part of the campaign
    /// identity: panel states (and the rendered figure JSON) are
    /// byte-identical whatever this records. [`ShardState::merge`]
    /// validates the kernel/threshold identity across a shard set and
    /// **aggregates** the rest (clocks and snapshots sum).
    pub metrics: ShardMetrics,
}

impl ShardState {
    /// `true` when this state is the checkpoint for exactly the given
    /// campaign slice — same figure spec and same shard coordinates.
    #[must_use]
    pub fn matches(&self, spec: &FigureSpec, shard: ShardSpec) -> bool {
        self.spec == *spec && self.shard == shard
    }

    /// Wall-clock seconds the producing process spent evaluating this
    /// shard (the `metrics` section's clock; summed across shards in a
    /// merged state).
    #[must_use]
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.metrics.elapsed_seconds
    }

    /// CPU seconds spent generating fault maps, summed across workers.
    #[must_use]
    pub fn generation_seconds(&self) -> Option<f64> {
        self.metrics.generation_seconds
    }

    /// Name of the evaluation kernel that produced this state.
    #[must_use]
    pub fn kernel(&self) -> Option<&str> {
        self.metrics.kernel.as_deref()
    }

    /// The `--auto-threshold` override the producing run resolved with.
    #[must_use]
    pub fn auto_threshold(&self) -> Option<f64> {
        self.metrics.auto_threshold
    }

    /// Serialises the state to the shard-file document.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("format", SHARD_STATE_FORMAT.to_json()),
            ("spec", self.spec.to_json()),
            ("shard_index", self.shard.shard_index().to_json()),
            ("shard_count", self.shard.shard_count().to_json()),
            ("metrics", self.metrics.to_json()),
            (
                "panels",
                JsonValue::Array(
                    self.panels
                        .iter()
                        .map(|panel| {
                            JsonValue::object([
                                ("label", panel.label.to_json()),
                                ("kind", panel.state.kind_name().to_json()),
                                ("state", panel_state_to_json(&panel.state)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a shard-file document.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] for malformed JSON, a foreign format tag,
    /// an unregistered figure or missing fields.
    pub fn parse(text: &str) -> Result<Self, ShardStateError> {
        let document = JsonValue::parse(text).map_err(|e| ShardStateError::new(format!("{e}")))?;
        Self::from_json(&document)
    }

    /// Reads the state from a parsed shard-file document.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] for a foreign format tag, an
    /// unregistered figure or missing fields.
    pub fn from_json(document: &JsonValue) -> Result<Self, ShardStateError> {
        let format = document
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ShardStateError::new("missing 'format' tag"))?;
        let legacy_v2 = format == SHARD_STATE_FORMAT_V2;
        if format != SHARD_STATE_FORMAT && !legacy_v2 {
            return Err(ShardStateError::new(format!(
                "unsupported shard-state format '{format}', expected '{SHARD_STATE_FORMAT}' \
                 (or the legacy '{SHARD_STATE_FORMAT_V2}')"
            )));
        }
        let spec = document
            .get("spec")
            .ok_or_else(|| ShardStateError::new("missing 'spec'"))
            .and_then(|spec| FigureSpec::from_json(spec).map_err(ShardStateError::new))?;
        let shard_index = document
            .get("shard_index")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ShardStateError::new("missing 'shard_index'"))?;
        let shard_count = document
            .get("shard_count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ShardStateError::new("missing 'shard_count'"))?;
        let shard = ShardSpec::new(shard_index as usize, shard_count as usize)
            .map_err(|e| ShardStateError::new(e.to_string()))?;
        // Telemetry is optional: files from before it existed simply carry
        // none. v2 checkpoints spread the fields over the document's top
        // level; v3 folds them into the `metrics` section — either way they
        // land in the same [`ShardMetrics`], so there is exactly one
        // accessor path whatever produced the file.
        let metrics = if legacy_v2 {
            ShardMetrics {
                elapsed_seconds: document.get("elapsed_seconds").and_then(JsonValue::as_f64),
                kernel: document
                    .get("kernel")
                    .and_then(JsonValue::as_str)
                    .map(str::to_owned),
                generation_seconds: document
                    .get("generation_seconds")
                    .and_then(JsonValue::as_f64),
                auto_threshold: document.get("auto_threshold").and_then(JsonValue::as_f64),
                snapshot: None,
            }
        } else {
            match document.get("metrics") {
                None => ShardMetrics::default(),
                Some(section) => ShardMetrics::from_json(section).map_err(ShardStateError::new)?,
            }
        };
        let panels = document
            .get("panels")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ShardStateError::new("missing 'panels'"))?
            .iter()
            .map(|panel| {
                let label = panel
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ShardStateError::new("panel is missing 'label'"))?
                    .to_owned();
                let kind = panel
                    .get("kind")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ShardStateError::new("panel is missing 'kind'"))?;
                let state = panel
                    .get("state")
                    .ok_or_else(|| ShardStateError::new("panel is missing 'state'"))
                    .and_then(|state| panel_state_from_json(kind, state))?;
                Ok(ShardPanelState { label, state })
            })
            .collect::<Result<Vec<_>, ShardStateError>>()?;
        Ok(Self {
            spec,
            shard,
            panels,
            metrics,
        })
    }

    /// Merges a complete set of shard states into the monolithic state.
    ///
    /// The input may arrive in any order; shards are sorted by index and
    /// merged ascending, which reproduces the monolithic chunk-order
    /// reduction bit for bit. Validation requires one shard for every index
    /// `0..shard_count`, a common figure spec, identical panel
    /// labels/catalogues and an agreeing [`ShardState::kernel`] wherever
    /// recorded — and reports **every** missing, duplicated or mismatched
    /// shard index of the K-set in one error instead of failing on the
    /// first bad file.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] enumerating all problems of an
    /// incomplete, duplicated or mismatched shard set.
    pub fn merge(mut shards: Vec<ShardState>) -> Result<ShardState, ShardStateError> {
        let first = shards
            .first()
            .ok_or_else(|| ShardStateError::new("no shard files to merge"))?;
        let spec = first.spec.clone();
        let shard_count = first.shard.shard_count();

        // Shard files can claim any K, so refuse an absurd count before
        // allocating the per-index bookkeeping it would size.
        const MAX_ENUMERATED_SHARDS: usize = 100_000;
        if shard_count > MAX_ENUMERATED_SHARDS {
            return Err(ShardStateError::new(format!(
                "cannot merge shard set: shard {} claims a {shard_count}-shard campaign \
                 (more than the {MAX_ENUMERATED_SHARDS} supported)",
                first.shard
            )));
        }

        // Collect every defect of the set before failing, so one error
        // message names exactly which indices are missing or mismatched.
        let mut spec_mismatches: Vec<String> = Vec::new();
        let mut panel_mismatches: Vec<String> = Vec::new();
        // `--kernel auto` resolves per campaign, so every shard of a set
        // must record the same kernel; a disagreement means the shards were
        // produced by runs with different flags (or different auto
        // resolutions) and their throughput telemetry is not comparable.
        // Legacy checkpoints without the field merge with anything.
        let mut kernels: Vec<String> = shards
            .iter()
            .filter_map(|shard| shard.metrics.kernel.clone())
            .collect();
        kernels.sort();
        kernels.dedup();
        // The auto-threshold override can flip which kernel `auto` resolves
        // to, so the same consistency argument applies: shards recording
        // different thresholds were produced with inconsistent flags.
        // Compared by bit pattern — the threshold is recorded verbatim, so
        // exact equality is the right notion.
        let mut thresholds: Vec<u64> = shards
            .iter()
            .filter_map(|shard| shard.metrics.auto_threshold.map(f64::to_bits))
            .collect();
        thresholds.sort_unstable();
        thresholds.dedup();
        let labels: Vec<(String, &'static str)> = first
            .panels
            .iter()
            .map(|p| (p.label.clone(), p.state.kind_name()))
            .collect();
        for shard in &shards {
            if shard.spec != spec || shard.shard.shard_count() != shard_count {
                spec_mismatches.push(shard.shard.to_string());
                continue;
            }
            let shard_labels: Vec<(String, &'static str)> = shard
                .panels
                .iter()
                .map(|p| (p.label.clone(), p.state.kind_name()))
                .collect();
            let compatible = shard_labels == labels
                && first
                    .panels
                    .iter()
                    .zip(&shard.panels)
                    .all(|(a, b)| a.state.compatible_with(&b.state));
            if !compatible {
                panel_mismatches.push(shard.shard.to_string());
            }
        }

        let mut present = vec![0usize; shard_count];
        for shard in &shards {
            if shard.shard.shard_count() == shard_count {
                present[shard.shard.shard_index()] += 1;
            }
        }
        let missing: Vec<String> = present
            .iter()
            .enumerate()
            .filter(|(_, &count)| count == 0)
            .map(|(index, _)| index.to_string())
            .collect();
        let duplicated: Vec<String> = present
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 1)
            .map(|(index, _)| index.to_string())
            .collect();

        if !(spec_mismatches.is_empty()
            && panel_mismatches.is_empty()
            && missing.is_empty()
            && duplicated.is_empty()
            && kernels.len() <= 1
            && thresholds.len() <= 1
            && shards.len() == shard_count)
        {
            let mut problems = Vec::new();
            if !missing.is_empty() {
                problems.push(format!(
                    "missing shard(s) [{}] of the {shard_count}-shard set",
                    missing.join(", ")
                ));
            }
            if !duplicated.is_empty() {
                problems.push(format!("duplicated shard(s) [{}]", duplicated.join(", ")));
            }
            if !spec_mismatches.is_empty() {
                problems.push(format!(
                    "shard(s) [{}] were produced by a different campaign configuration \
                     than shard {}",
                    spec_mismatches.join(", "),
                    first.shard
                ));
            }
            if !panel_mismatches.is_empty() {
                problems.push(format!(
                    "shard(s) [{}] disagree on the campaign panels or scheme catalogue",
                    panel_mismatches.join(", ")
                ));
            }
            if kernels.len() > 1 {
                problems.push(format!(
                    "shards disagree on the evaluation kernel ({})",
                    kernels
                        .iter()
                        .map(|kernel| format!("'{kernel}'"))
                        .collect::<Vec<_>>()
                        .join(" vs ")
                ));
            }
            if thresholds.len() > 1 {
                problems.push(format!(
                    "shards disagree on the auto-kernel threshold ({})",
                    thresholds
                        .iter()
                        .map(|&bits| format!("{}", f64::from_bits(bits)))
                        .collect::<Vec<_>>()
                        .join(" vs ")
                ));
            }
            if problems.is_empty() {
                problems.push(format!(
                    "{} file(s) provided for a {shard_count}-shard campaign",
                    shards.len()
                ));
            }
            return Err(ShardStateError::new(format!(
                "cannot merge shard set: {}",
                problems.join("; ")
            )));
        }

        shards.sort_by_key(|shard| shard.shard.shard_index());
        let mut iter = shards.into_iter();
        let mut merged = iter.next().expect("validated non-empty");
        for shard in iter {
            for (into, from) in merged.panels.iter_mut().zip(shard.panels) {
                into.state.merge(from.state).map_err(ShardStateError::new)?;
            }
            // Telemetry aggregates across the set: clocks and snapshots
            // sum (counter sums are the monolithic run's counters, since
            // every chunk's contribution lands in exactly one shard); the
            // kernel/threshold identity was validated consistent above and
            // is kept.
            merged.metrics.absorb(&shard.metrics);
        }
        merged.shard = ShardSpec::solo();
        Ok(merged)
    }

    /// Splits the state into bare panel states, in panel order — the shape
    /// [`crate::figures::FigureDef::render`] consumes — after validating
    /// the labels against the figure's own panel list.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] when the stored panels do not match the
    /// figure's panels (a malformed or foreign shard set).
    pub fn into_panels(
        self,
        expected_labels: &[String],
    ) -> Result<Vec<PanelState>, ShardStateError> {
        let found: Vec<&str> = self.panels.iter().map(|p| p.label.as_str()).collect();
        if found
            != expected_labels
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        {
            return Err(ShardStateError::new(format!(
                "panel labels {found:?} do not match the figure's panels {expected_labels:?}"
            )));
        }
        Ok(self.panels.into_iter().map(|p| p.state).collect())
    }
}

/// Reads and parses a set of shard files, reporting **every** unreadable or
/// malformed file in one error (instead of failing on the first), plus any
/// mix of different figures across the set.
///
/// # Errors
///
/// Returns [`ShardStateError`] listing each bad path with its reason.
pub fn load_shard_files<P: AsRef<Path>>(paths: &[P]) -> Result<Vec<ShardState>, ShardStateError> {
    let mut states = Vec::new();
    let mut problems = Vec::new();
    for path in paths {
        let path = path.as_ref();
        match std::fs::read_to_string(path) {
            Err(e) => problems.push(format!("'{}': cannot read ({e})", path.display())),
            Ok(text) => match ShardState::parse(&text) {
                Err(e) => problems.push(format!("'{}': {e}", path.display())),
                Ok(state) => states.push(state),
            },
        }
    }
    if let Some(first) = states.first() {
        let figure = first.spec.figure.clone();
        let mixed: Vec<String> = states
            .iter()
            .filter(|s| s.spec.figure != figure)
            .map(|s| format!("'{}' (shard {})", s.spec.figure, s.shard))
            .collect();
        if !mixed.is_empty() {
            problems.push(format!(
                "shard files mix figures: expected '{figure}', also found {}",
                mixed.join(", ")
            ));
        }
    }
    if !problems.is_empty() {
        return Err(ShardStateError::new(format!(
            "cannot load shard set: {}",
            problems.join("; ")
        )));
    }
    Ok(states)
}

/// Serialises a [`CdfSketch`] as its ordered `(value, weight)` observation
/// list.
#[must_use]
pub fn sketch_to_json(sketch: &CdfSketch) -> JsonValue {
    JsonValue::Array(
        sketch
            .observations()
            .iter()
            .map(|&(value, weight)| {
                JsonValue::Array(vec![JsonValue::Number(value), JsonValue::Number(weight)])
            })
            .collect(),
    )
}

/// Rebuilds a [`CdfSketch`] from its serialised observation list,
/// re-accumulating the order-sensitive total weight exactly.
///
/// # Errors
///
/// Returns [`ShardStateError`] when the document is not a list of
/// `[value, weight]` pairs.
pub fn sketch_from_json(value: &JsonValue) -> Result<CdfSketch, ShardStateError> {
    let observations = value
        .as_array()
        .ok_or_else(|| ShardStateError::new("sketch must be an array of [value, weight] pairs"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| ShardStateError::new("sketch entries must be [value, weight]"))?;
            let value = pair[0]
                .as_f64()
                .ok_or_else(|| ShardStateError::new("sketch values must be numbers"))?;
            let weight = pair[1]
                .as_f64()
                .ok_or_else(|| ShardStateError::new("sketch weights must be numbers"))?;
            Ok((value, weight))
        })
        .collect::<Result<Vec<_>, ShardStateError>>()?;
    Ok(CdfSketch::from_observations(observations))
}

/// Serialises a [`CatalogueAccumulator`]: one entry per scheme, each a list
/// of `{n, cdf}` per-failure-count sketches in ascending failure count.
#[must_use]
pub fn accumulator_to_json(accumulator: &CatalogueAccumulator) -> JsonValue {
    JsonValue::Array(
        accumulator
            .per_scheme_counts()
            .iter()
            .map(|per_count| {
                JsonValue::Array(
                    per_count
                        .iter()
                        .map(|(&n_faults, cdf)| {
                            JsonValue::object([
                                ("n", n_faults.to_json()),
                                ("cdf", sketch_to_json(cdf.sketch())),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Rebuilds a [`CatalogueAccumulator`] from its serialised form.
///
/// # Errors
///
/// Returns [`ShardStateError`] for structural mismatches.
pub fn accumulator_from_json(value: &JsonValue) -> Result<CatalogueAccumulator, ShardStateError> {
    let per_scheme = value
        .as_array()
        .ok_or_else(|| ShardStateError::new("accumulator state must be an array of schemes"))?
        .iter()
        .map(|scheme| {
            let mut per_count = BTreeMap::new();
            for entry in scheme.as_array().ok_or_else(|| {
                ShardStateError::new("per-scheme state must be an array of {n, cdf} entries")
            })? {
                let n_faults = entry
                    .get("n")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| ShardStateError::new("count entry is missing 'n'"))?;
                let sketch = entry
                    .get("cdf")
                    .ok_or_else(|| ShardStateError::new("count entry is missing 'cdf'"))
                    .and_then(sketch_from_json)?;
                if per_count
                    .insert(n_faults, EmpiricalCdf::from_sketch(sketch))
                    .is_some()
                {
                    return Err(ShardStateError::new(format!(
                        "duplicate failure count {n_faults} in accumulator state"
                    )));
                }
            }
            Ok(per_count)
        })
        .collect::<Result<Vec<_>, ShardStateError>>()?;
    Ok(CatalogueAccumulator::from_per_scheme_counts(per_scheme))
}

/// Serialises an ordered [`PairedSample`] record stream: one
/// `[index, n, weight, [metrics…]]` entry per record.
#[must_use]
pub fn records_to_json(records: &[PairedSample]) -> JsonValue {
    JsonValue::Array(
        records
            .iter()
            .map(|record| {
                JsonValue::Array(vec![
                    record.sample_index.to_json(),
                    record.n_faults.to_json(),
                    JsonValue::Number(record.weight),
                    record.metrics.to_json(),
                ])
            })
            .collect(),
    )
}

/// Rebuilds an ordered [`PairedSample`] record stream from its serialised
/// form.
///
/// # Errors
///
/// Returns [`ShardStateError`] when the document is not a list of
/// `[index, n, weight, [metrics…]]` entries.
pub fn records_from_json(value: &JsonValue) -> Result<Vec<PairedSample>, ShardStateError> {
    value
        .as_array()
        .ok_or_else(|| ShardStateError::new("records state must be an array"))?
        .iter()
        .map(|entry| {
            let entry = entry
                .as_array()
                .filter(|items| items.len() == 4)
                .ok_or_else(|| {
                    ShardStateError::new("record entries must be [index, n, weight, metrics]")
                })?;
            let sample_index = entry[0]
                .as_u64()
                .ok_or_else(|| ShardStateError::new("record index must be an integer"))?;
            let n_faults = entry[1]
                .as_u64()
                .ok_or_else(|| ShardStateError::new("record fault count must be an integer"))?;
            let weight = entry[2]
                .as_f64()
                .ok_or_else(|| ShardStateError::new("record weight must be a number"))?;
            let metrics = entry[3]
                .as_array()
                .ok_or_else(|| ShardStateError::new("record metrics must be an array"))?
                .iter()
                .map(|metric| {
                    metric
                        .as_f64()
                        .ok_or_else(|| ShardStateError::new("record metrics must be numbers"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(PairedSample {
                sample_index,
                n_faults,
                weight,
                metrics,
            })
        })
        .collect()
}

/// Serialises one panel's [`PanelState`] payload (the shape under the
/// panel's `kind` tag).
#[must_use]
pub fn panel_state_to_json(state: &PanelState) -> JsonValue {
    match state {
        PanelState::Catalogue {
            scheme_names,
            accumulator,
        } => JsonValue::object([
            ("schemes", scheme_names.to_json()),
            ("accumulator", accumulator_to_json(accumulator)),
        ]),
        PanelState::Records {
            metric_names,
            records,
        } => JsonValue::object([
            ("metrics", metric_names.to_json()),
            ("records", records_to_json(records)),
        ]),
        PanelState::Table { rows } => rows.clone(),
    }
}

/// Rebuilds a [`PanelState`] from its `kind` tag and serialised payload.
///
/// # Errors
///
/// Returns [`ShardStateError`] for unknown kinds or structural mismatches.
pub fn panel_state_from_json(kind: &str, value: &JsonValue) -> Result<PanelState, ShardStateError> {
    match kind {
        "catalogue" => {
            let scheme_names = value
                .get("schemes")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| ShardStateError::new("catalogue state is missing 'schemes'"))?
                .iter()
                .map(|name| {
                    name.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| ShardStateError::new("scheme names must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let accumulator = value
                .get("accumulator")
                .ok_or_else(|| ShardStateError::new("catalogue state is missing 'accumulator'"))
                .and_then(accumulator_from_json)?;
            if accumulator.scheme_count() != scheme_names.len() {
                return Err(ShardStateError::new(format!(
                    "catalogue state tracks {} schemes but names {}",
                    accumulator.scheme_count(),
                    scheme_names.len()
                )));
            }
            Ok(PanelState::Catalogue {
                scheme_names,
                accumulator,
            })
        }
        "records" => {
            let metric_names = value
                .get("metrics")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| ShardStateError::new("records state is missing 'metrics'"))?
                .iter()
                .map(|name| {
                    name.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| ShardStateError::new("metric names must be strings"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let records = value
                .get("records")
                .ok_or_else(|| ShardStateError::new("records state is missing 'records'"))
                .and_then(records_from_json)?;
            if let Some(record) = records
                .iter()
                .find(|record| record.metrics.len() != metric_names.len())
            {
                return Err(ShardStateError::new(format!(
                    "record {} carries {} metrics but the panel names {}",
                    record.sample_index,
                    record.metrics.len(),
                    metric_names.len()
                )));
            }
            Ok(PanelState::Records {
                metric_names,
                records,
            })
        }
        "table" => Ok(PanelState::Table {
            rows: value.clone(),
        }),
        other => Err(ShardStateError::new(format!(
            "unknown panel state kind '{other}'"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::find_figure;
    use crate::RunOptions;
    use faultmit_sim::Accumulator;

    fn sample(index: u64, n_faults: u64, metrics: &[f64]) -> PairedSample {
        PairedSample {
            sample_index: index,
            n_faults,
            weight: 0.125 + index as f64 * 1e-3,
            metrics: metrics.to_vec(),
        }
    }

    fn spec() -> FigureSpec {
        find_figure("fig5").unwrap().spec(&RunOptions::default())
    }

    #[test]
    fn empty_sketch_round_trips() {
        let sketch = CdfSketch::new();
        let round = sketch_from_json(&sketch_to_json(&sketch)).unwrap();
        assert_eq!(round, sketch);
        assert_eq!(round.total_weight().to_bits(), 0f64.to_bits());
    }

    #[test]
    fn single_sample_sketch_round_trips_bit_exactly() {
        let mut sketch = CdfSketch::new();
        sketch.push(1.0 / 3.0, 5e-324_f64.max(1e-17));
        let round = sketch_from_json(&sketch_to_json(&sketch)).unwrap();
        assert_eq!(round, sketch);
        assert_eq!(
            round.total_weight().to_bits(),
            sketch.total_weight().to_bits()
        );
    }

    #[test]
    fn sketch_round_trip_preserves_order_sensitive_weight_sums() {
        let mut sketch = CdfSketch::new();
        for (i, w) in [1e-3, 1e16, 1.0, 1e-7, 3.5, 1e12].into_iter().enumerate() {
            sketch.push(i as f64 * 0.1, w);
        }
        let text = sketch_to_json(&sketch).to_pretty_string();
        let round = sketch_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round, sketch);
        assert_eq!(
            round.total_weight().to_bits(),
            sketch.total_weight().to_bits()
        );
    }

    #[test]
    fn empty_accumulator_round_trips() {
        for accumulator in [
            CatalogueAccumulator::default(),
            CatalogueAccumulator::new(3),
        ] {
            let round = accumulator_from_json(&accumulator_to_json(&accumulator)).unwrap();
            assert_eq!(round, accumulator);
        }
    }

    #[test]
    fn populated_accumulator_round_trips_through_text() {
        let mut accumulator = CatalogueAccumulator::new(2);
        accumulator.record(&sample(0, 1, &[10.0, 0.5]));
        accumulator.record(&sample(1, 1, &[20.0, 1.0 / 3.0]));
        accumulator.record(&sample(2, 4, &[30.0, 0.125]));
        let text = accumulator_to_json(&accumulator).to_pretty_string();
        let round = accumulator_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round, accumulator);
    }

    #[test]
    fn record_streams_round_trip_through_text() {
        let records = vec![
            sample(0, 64, &[1.0 / 3.0, 5e-324]),
            sample(1, 64, &[2.5, 1e300]),
            sample(7, 256, &[0.0, -0.125]),
        ];
        let text = records_to_json(&records).to_pretty_string();
        let round = records_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round.len(), records.len());
        for (a, b) in records.iter().zip(&round) {
            assert_eq!(a.sample_index, b.sample_index);
            assert_eq!(a.n_faults, b.n_faults);
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.metrics.len(), b.metrics.len());
            for (x, y) in a.metrics.iter().zip(&b.metrics) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn malformed_state_documents_are_rejected() {
        assert!(sketch_from_json(&JsonValue::Null).is_err());
        assert!(sketch_from_json(&JsonValue::parse("[[1.0]]").unwrap()).is_err());
        assert!(sketch_from_json(&JsonValue::parse("[[1.0, true]]").unwrap()).is_err());
        assert!(accumulator_from_json(&JsonValue::parse("[{}]").unwrap()).is_err());
        assert!(accumulator_from_json(
            &JsonValue::parse("[[{\"n\": 1, \"cdf\": []}, {\"n\": 1, \"cdf\": []}]]").unwrap()
        )
        .is_err());
        assert!(records_from_json(&JsonValue::Null).is_err());
        assert!(records_from_json(&JsonValue::parse("[[1, 2, 3]]").unwrap()).is_err());
        assert!(records_from_json(&JsonValue::parse("[[1, 2, 3.0, 4]]").unwrap()).is_err());
        assert!(records_from_json(&JsonValue::parse("[[1, 2, 3.0, [true]]]").unwrap()).is_err());
        assert!(panel_state_from_json("bogus", &JsonValue::Null).is_err());
        assert!(panel_state_from_json("catalogue", &JsonValue::Null).is_err());
        assert!(panel_state_from_json("records", &JsonValue::Null).is_err());
        // Mismatched metric arity inside a records panel.
        assert!(panel_state_from_json(
            "records",
            &JsonValue::parse("{\"metrics\": [\"a\", \"b\"], \"records\": [[0, 1, 0.5, [1.0]]]}")
                .unwrap()
        )
        .is_err());
        assert!(ShardState::parse("not json").is_err());
        assert!(ShardState::parse("{\"format\": \"other/v9\"}").is_err());
        // The v1 tag is a foreign format now.
        assert!(ShardState::parse("{\"format\": \"faultmit-shard-state/v1\"}").is_err());
    }

    fn one_panel_state(values: &[f64]) -> PanelState {
        let mut accumulator = CatalogueAccumulator::new(1);
        for (i, &value) in values.iter().enumerate() {
            accumulator.record(&sample(i as u64, 1, &[value]));
        }
        PanelState::Catalogue {
            scheme_names: vec!["no-correction".to_owned()],
            accumulator,
        }
    }

    fn shard_with(index: usize, count: usize, values: &[f64]) -> ShardState {
        ShardState {
            spec: spec(),
            shard: ShardSpec::new(index, count).unwrap(),
            panels: vec![ShardPanelState {
                label: "fig5".to_owned(),
                state: one_panel_state(values),
            }],
            metrics: ShardMetrics {
                elapsed_seconds: Some(0.25 + index as f64),
                kernel: Some("sparse".to_owned()),
                generation_seconds: Some(0.125 + index as f64 * 0.5),
                auto_threshold: None,
                snapshot: None,
            },
        }
    }

    #[test]
    fn shard_state_round_trips_and_matches() {
        let state = shard_with(1, 3, &[7.5]);
        let text = state.to_json().to_pretty_string();
        let round = ShardState::parse(&text).unwrap();
        assert_eq!(round, state);
        assert!(round.matches(&spec(), ShardSpec::new(1, 3).unwrap()));
        assert!(!round.matches(&spec(), ShardSpec::new(0, 3).unwrap()));
        let other_spec = FigureSpec {
            samples_per_count: 99,
            ..spec()
        };
        assert!(!round.matches(&other_spec, ShardSpec::new(1, 3).unwrap()));
    }

    #[test]
    fn every_panel_kind_round_trips_inside_a_shard_state() {
        let records = PanelState::Records {
            metric_names: vec!["naive".to_owned(), "optimal".to_owned()],
            records: vec![sample(0, 9, &[1.5, 0.5]), sample(1, 9, &[2.5, 1.0 / 7.0])],
        };
        let table = PanelState::Table {
            rows: JsonValue::parse("[{\"a\": 1.25}, {\"a\": null}]").unwrap(),
        };
        let state = ShardState {
            spec: spec(),
            shard: ShardSpec::solo(),
            metrics: ShardMetrics::default(),
            panels: vec![
                ShardPanelState {
                    label: "cat".to_owned(),
                    state: one_panel_state(&[1.0, 2.0]),
                },
                ShardPanelState {
                    label: "rec".to_owned(),
                    state: records,
                },
                ShardPanelState {
                    label: "tab".to_owned(),
                    state: table,
                },
            ],
        };
        let round = ShardState::parse(&state.to_json().to_pretty_string()).unwrap();
        assert_eq!(round, state);
    }

    #[test]
    fn elapsed_telemetry_round_trips_and_is_optional() {
        // Telemetry survives the round trip…
        let mut state = shard_with(1, 3, &[7.5]);
        state.metrics.auto_threshold = Some(0.0625);
        assert_eq!(state.elapsed_seconds(), Some(1.25));
        assert_eq!(state.kernel(), Some("sparse"));
        assert_eq!(state.generation_seconds(), Some(0.625));
        let round = ShardState::parse(&state.to_json().to_pretty_string()).unwrap();
        assert_eq!(round.elapsed_seconds(), Some(1.25));
        assert_eq!(round.kernel(), Some("sparse"));
        assert_eq!(round.generation_seconds(), Some(0.625));
        assert_eq!(round.auto_threshold(), Some(0.0625));
        // …and files without the `metrics` section parse as empty metrics.
        let mut document = state.to_json();
        if let JsonValue::Object(fields) = &mut document {
            fields.retain(|(key, _)| key != "metrics");
        }
        let legacy = ShardState::from_json(&document).unwrap();
        assert!(legacy.metrics.is_empty());
        assert_eq!(legacy.elapsed_seconds(), None);
        assert_eq!(legacy.kernel(), None);
        assert!(legacy.matches(&spec(), ShardSpec::new(1, 3).unwrap()));
    }

    #[test]
    fn legacy_v2_checkpoints_with_top_level_telemetry_still_parse() {
        // A literal v2 document, exactly as `campaign_shard` wrote it before
        // the `metrics` section existed: telemetry lives at the top level.
        let mut document = shard_with(1, 3, &[7.5]).to_json();
        let JsonValue::Object(fields) = &mut document else {
            panic!("shard state serialises as an object");
        };
        fields.retain(|(key, _)| key != "metrics");
        for (key, value) in fields.iter_mut() {
            if key == "format" {
                *value = JsonValue::String(SHARD_STATE_FORMAT_V2.to_owned());
            }
        }
        fields.push(("elapsed_seconds".to_owned(), JsonValue::Number(1.25)));
        fields.push(("kernel".to_owned(), JsonValue::String("sparse".to_owned())));
        fields.push(("generation_seconds".to_owned(), JsonValue::Number(0.625)));
        fields.push(("auto_threshold".to_owned(), JsonValue::Number(0.0625)));

        let migrated = ShardState::from_json(&document).unwrap();
        assert_eq!(migrated.elapsed_seconds(), Some(1.25));
        assert_eq!(migrated.kernel(), Some("sparse"));
        assert_eq!(migrated.generation_seconds(), Some(0.625));
        assert_eq!(migrated.auto_threshold(), Some(0.0625));
        assert!(migrated.metrics.snapshot.is_none());
        // The migrated state re-serialises as v3 with a `metrics` section.
        let round = ShardState::parse(&migrated.to_json().to_pretty_string()).unwrap();
        assert_eq!(round, migrated);
    }

    #[test]
    fn shard_state_round_trips_a_populated_metrics_snapshot() {
        let recorder = faultmit_obs::Recorder::new();
        {
            let recorder = std::sync::Arc::new(recorder);
            let _guard = faultmit_obs::install(&recorder);
            faultmit_obs::count(faultmit_obs::Counter::SamplesEvaluated, 42);
            faultmit_obs::record(faultmit_obs::Histogram::FaultsPerDie, 3);
            faultmit_obs::add_stage(faultmit_obs::Stage::Generate, 1_000, 7);
            let mut state = shard_with(0, 1, &[7.5]);
            state.metrics.snapshot = Some(recorder.snapshot());
            let round = ShardState::parse(&state.to_json().to_pretty_string()).unwrap();
            assert_eq!(round, state);
            let snapshot = round.metrics.snapshot.expect("snapshot survives");
            assert_eq!(
                snapshot.counter(faultmit_obs::Counter::SamplesEvaluated),
                42
            );
        }
    }

    #[test]
    fn merge_folds_shards_in_index_order_regardless_of_input_order() {
        let merged = ShardState::merge(vec![
            shard_with(2, 3, &[5.0]),
            shard_with(0, 3, &[1.0, 2.0]),
            shard_with(1, 3, &[3.0]),
        ])
        .unwrap();
        assert!(merged.shard.is_solo());
        // Telemetry aggregates: clocks sum across the set, the validated
        // kernel identity is kept.
        assert_eq!(merged.elapsed_seconds(), Some(0.25 + 1.25 + 2.25));
        assert_eq!(merged.kernel(), Some("sparse"));
        assert_eq!(merged.generation_seconds(), Some(0.125 + 0.625 + 1.125));
        let PanelState::Catalogue { accumulator, .. } = &merged.panels[0].state else {
            panic!("expected catalogue state");
        };
        let values: Vec<f64> = accumulator.per_scheme_counts()[0][&1]
            .samples()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn merge_verifies_kernel_consistency_across_the_shard_set() {
        // A disagreeing kernel is a re-sharded campaign with different
        // flags (or inconsistent auto resolutions) — refuse, naming both.
        let mut wide = shard_with(1, 2, &[2.0]);
        wide.metrics.kernel = Some("auto:bitsliced256".to_owned());
        let mut sparse = shard_with(0, 2, &[1.0]);
        sparse.metrics.kernel = Some("auto:sparse".to_owned());
        let error = ShardState::merge(vec![sparse, wide]).unwrap_err();
        assert!(
            error.reason.contains(
                "shards disagree on the evaluation kernel \
                 ('auto:bitsliced256' vs 'auto:sparse')"
            ),
            "{error}"
        );

        // Legacy checkpoints without the field merge with anything (the
        // shard that did record a kernel supplies the merged identity)…
        let mut legacy = shard_with(0, 2, &[1.0]);
        legacy.metrics.kernel = None;
        let merged = ShardState::merge(vec![legacy, shard_with(1, 2, &[2.0])]).unwrap();
        assert_eq!(merged.kernel(), Some("sparse"));

        // …and an agreeing auto resolution merges like any fixed kernel.
        let mut a = shard_with(0, 2, &[1.0]);
        let mut b = shard_with(1, 2, &[2.0]);
        a.metrics.kernel = Some("auto:sparse".to_owned());
        b.metrics.kernel = Some("auto:sparse".to_owned());
        let merged = ShardState::merge(vec![a, b]).unwrap();
        assert_eq!(merged.kernel(), Some("auto:sparse"));
    }

    #[test]
    fn merge_verifies_auto_threshold_consistency_across_the_shard_set() {
        // Different recorded thresholds mean the campaign was re-sharded
        // with inconsistent --auto-threshold flags — refuse, naming both.
        let mut a = shard_with(0, 2, &[1.0]);
        let mut b = shard_with(1, 2, &[2.0]);
        a.metrics.auto_threshold = Some(0.0625);
        b.metrics.auto_threshold = Some(0.25);
        let error = ShardState::merge(vec![a, b]).unwrap_err();
        assert!(
            error
                .reason
                .contains("disagree on the auto-kernel threshold (0.0625 vs 0.25)"),
            "{error}"
        );

        // Legacy checkpoints without the field merge with anything, and an
        // agreeing override merges — keeping the validated threshold.
        let mut a = shard_with(0, 2, &[1.0]);
        let mut b = shard_with(1, 2, &[2.0]);
        a.metrics.auto_threshold = Some(0.0625);
        b.metrics.auto_threshold = Some(0.0625);
        let merged = ShardState::merge(vec![a, b]).unwrap();
        assert_eq!(merged.auto_threshold(), Some(0.0625));
        let mut legacy = shard_with(0, 2, &[1.0]);
        legacy.metrics.auto_threshold = None;
        let mut tuned = shard_with(1, 2, &[2.0]);
        tuned.metrics.auto_threshold = Some(0.5);
        assert!(ShardState::merge(vec![legacy, tuned]).is_ok());
    }

    #[test]
    fn merge_errors_enumerate_every_missing_and_mismatched_shard() {
        assert!(ShardState::merge(vec![]).is_err());

        // Missing shards 1 and 3 of 5: both named in one message.
        let error = ShardState::merge(vec![
            shard_with(0, 5, &[1.0]),
            shard_with(2, 5, &[2.0]),
            shard_with(4, 5, &[3.0]),
        ])
        .unwrap_err();
        assert!(error.reason.contains("missing shard(s) [1, 3]"), "{error}");
        assert!(error.reason.contains("5-shard set"), "{error}");

        // Duplicate shard index.
        let error = ShardState::merge(vec![shard_with(0, 2, &[1.0]), shard_with(0, 2, &[2.0])])
            .unwrap_err();
        assert!(error.reason.contains("duplicated shard(s) [0]"), "{error}");
        assert!(error.reason.contains("missing shard(s) [1]"), "{error}");

        // Conflicting spec: the offending index is named.
        let mut foreign = shard_with(1, 2, &[2.0]);
        foreign.spec.samples_per_count = 7;
        let error = ShardState::merge(vec![shard_with(0, 2, &[1.0]), foreign]).unwrap_err();
        assert!(
            error.reason.contains("[1/2]") && error.reason.contains("different campaign"),
            "{error}"
        );

        // Conflicting catalogue.
        let mut renamed = shard_with(1, 2, &[2.0]);
        if let PanelState::Catalogue { scheme_names, .. } = &mut renamed.panels[0].state {
            scheme_names[0] = "other".to_owned();
        }
        let error = ShardState::merge(vec![shard_with(0, 2, &[1.0]), renamed]).unwrap_err();
        assert!(
            error.reason.contains("[1/2]") && error.reason.contains("disagree"),
            "{error}"
        );
    }

    #[test]
    fn merge_refuses_absurd_shard_counts_without_allocating() {
        // A corrupted/crafted file may claim any K; the merge must refuse
        // it cheaply instead of sizing bookkeeping by the claimed count.
        let mut shard = shard_with(0, 1, &[1.0]);
        shard.shard = ShardSpec::new(0, 50_000_000).unwrap();
        let error = ShardState::merge(vec![shard]).unwrap_err();
        assert!(error.reason.contains("claims a 50000000-shard"), "{error}");
    }

    #[test]
    fn into_panels_validates_labels() {
        let state = shard_with(0, 1, &[1.0]);
        assert!(state.clone().into_panels(&["fig5".to_owned()]).is_ok());
        assert!(state.into_panels(&["other".to_owned()]).is_err());
    }

    #[test]
    fn load_shard_files_reports_every_bad_path_and_mixed_figures() {
        let dir = std::env::temp_dir().join(format!("faultmit-shard-load-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let good = dir.join("good.json");
        std::fs::write(&good, shard_with(0, 2, &[1.0]).to_json().to_pretty_string()).unwrap();
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json at all").unwrap();
        let missing = dir.join("missing.json");

        let error = load_shard_files(&[&good, &garbage, &missing]).unwrap_err();
        assert!(error.reason.contains("garbage.json"), "{error}");
        assert!(error.reason.contains("missing.json"), "{error}");
        assert!(!error.reason.contains("good.json"), "{error}");

        // Mixed figures across one set are rejected even if each file is
        // individually valid.
        let foreign = dir.join("foreign.json");
        let mut other = shard_with(1, 2, &[2.0]);
        other.spec = find_figure("fig4").unwrap().spec(&RunOptions::default());
        other.panels = vec![ShardPanelState {
            label: "fig4".to_owned(),
            state: PanelState::Table {
                rows: JsonValue::Array(vec![]),
            },
        }];
        std::fs::write(&foreign, other.to_json().to_pretty_string()).unwrap();
        let error = load_shard_files(&[&good, &foreign]).unwrap_err();
        assert!(error.reason.contains("mix figures"), "{error}");
        assert!(error.reason.contains("fig4"), "{error}");

        let ok = load_shard_files(&[&good]).unwrap();
        assert_eq!(ok.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
