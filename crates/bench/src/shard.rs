//! Serializable shard state for distributed campaigns.
//!
//! A `campaign_shard` process evaluates one [`ShardSpec`] slice of a figure
//! campaign and writes its accumulator state to disk as a [`ShardState`]
//! JSON document; `campaign_merge` reads the shard files back, folds their
//! accumulators **in shard order** and renders the figure. Because
//!
//! 1. chunk boundaries and per-sample RNG streams derive from the global
//!    plan (see [`faultmit_sim::Campaign::try_run_shard`]),
//! 2. [`CdfSketch`] serialisation stores the raw `(value, weight)`
//!    observation list in insertion order and deserialisation re-accumulates
//!    it ([`CdfSketch::from_observations`]), and
//! 3. the in-tree JSON emitter prints every finite `f64` in its shortest
//!    round-trippable form (sole exception: `-0.0` normalises to `+0.0`,
//!    which no CDF query can distinguish — see the `json` module docs),
//!
//! the merged state — and therefore the rendered figure JSON — is
//! **byte-identical** to the monolithic single-process run for every
//! backend and any worker count.
//!
//! A completed shard file doubles as a checkpoint: `campaign_shard` skips
//! work when its output file already holds a state whose
//! [`ShardState::matches`] its request, so re-running a partially finished
//! K-shard campaign recomputes only the missing shards.

use crate::figures::FigureSpec;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::{CatalogueAccumulator, CdfSketch, EmpiricalCdf};
use faultmit_sim::{Accumulator, ShardSpec};
use std::collections::BTreeMap;
use std::fmt;

/// Format tag of shard-state documents (bump on incompatible changes).
pub const SHARD_STATE_FORMAT: &str = "faultmit-shard-state/v1";

/// Error reading or merging shard state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStateError {
    /// What went wrong.
    pub reason: String,
}

impl ShardStateError {
    fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ShardStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard state error: {}", self.reason)
    }
}

impl std::error::Error for ShardStateError {}

/// The accumulated state of one campaign panel (Fig. 5's single catalogue,
/// or one Fig. 7 benchmark) inside a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCampaignState {
    /// Panel label (`"fig5"` or the benchmark name).
    pub label: String,
    /// Scheme names in catalogue order (validated across shards on merge).
    pub scheme_names: Vec<String>,
    /// The shard's accumulator for this panel.
    pub accumulator: CatalogueAccumulator,
}

/// One shard's complete serialisable state: the campaign identity, the
/// shard coordinates, and one accumulator per campaign panel.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardState {
    /// Identity of the figure campaign the shard belongs to.
    pub spec: FigureSpec,
    /// Which slice of the campaign this state covers.
    pub shard: ShardSpec,
    /// Per-panel accumulator state, in panel order.
    pub campaigns: Vec<ShardCampaignState>,
}

impl ShardState {
    /// `true` when this state is the checkpoint for exactly the given
    /// campaign slice — same figure spec and same shard coordinates.
    #[must_use]
    pub fn matches(&self, spec: &FigureSpec, shard: ShardSpec) -> bool {
        self.spec == *spec && self.shard == shard
    }

    /// Serialises the state to the shard-file document.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("format", SHARD_STATE_FORMAT.to_json()),
            ("spec", self.spec.to_json()),
            ("shard_index", self.shard.shard_index().to_json()),
            ("shard_count", self.shard.shard_count().to_json()),
            (
                "campaigns",
                JsonValue::Array(
                    self.campaigns
                        .iter()
                        .map(|campaign| {
                            JsonValue::object([
                                ("label", campaign.label.to_json()),
                                ("schemes", campaign.scheme_names.to_json()),
                                ("state", accumulator_to_json(&campaign.accumulator)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a shard-file document.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] for malformed JSON, a foreign format tag
    /// or missing fields.
    pub fn parse(text: &str) -> Result<Self, ShardStateError> {
        let document = JsonValue::parse(text).map_err(|e| ShardStateError::new(format!("{e}")))?;
        Self::from_json(&document)
    }

    /// Reads the state from a parsed shard-file document.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] for a foreign format tag or missing
    /// fields.
    pub fn from_json(document: &JsonValue) -> Result<Self, ShardStateError> {
        let format = document
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ShardStateError::new("missing 'format' tag"))?;
        if format != SHARD_STATE_FORMAT {
            return Err(ShardStateError::new(format!(
                "unsupported shard-state format '{format}', expected '{SHARD_STATE_FORMAT}'"
            )));
        }
        let spec = document
            .get("spec")
            .ok_or_else(|| ShardStateError::new("missing 'spec'"))
            .and_then(|spec| FigureSpec::from_json(spec).map_err(ShardStateError::new))?;
        let shard_index = document
            .get("shard_index")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ShardStateError::new("missing 'shard_index'"))?;
        let shard_count = document
            .get("shard_count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ShardStateError::new("missing 'shard_count'"))?;
        let shard = ShardSpec::new(shard_index as usize, shard_count as usize)
            .map_err(|e| ShardStateError::new(e.to_string()))?;
        let campaigns = document
            .get("campaigns")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| ShardStateError::new("missing 'campaigns'"))?
            .iter()
            .map(|campaign| {
                let label = campaign
                    .get("label")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| ShardStateError::new("campaign is missing 'label'"))?
                    .to_owned();
                let scheme_names = campaign
                    .get("schemes")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| ShardStateError::new("campaign is missing 'schemes'"))?
                    .iter()
                    .map(|name| {
                        name.as_str()
                            .map(str::to_owned)
                            .ok_or_else(|| ShardStateError::new("scheme names must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let accumulator = campaign
                    .get("state")
                    .ok_or_else(|| ShardStateError::new("campaign is missing 'state'"))
                    .and_then(accumulator_from_json)?;
                if accumulator.scheme_count() != scheme_names.len() {
                    return Err(ShardStateError::new(format!(
                        "campaign '{label}' state tracks {} schemes but names {}",
                        accumulator.scheme_count(),
                        scheme_names.len()
                    )));
                }
                Ok(ShardCampaignState {
                    label,
                    scheme_names,
                    accumulator,
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            spec,
            shard,
            campaigns,
        })
    }

    /// Merges a complete set of shard states into the monolithic state.
    ///
    /// The input may arrive in any order; shards are sorted by index and
    /// merged ascending, which reproduces the monolithic chunk-order
    /// reduction bit for bit. Validation requires one shard for every index
    /// `0..shard_count`, a common figure spec and identical panel
    /// labels/catalogues.
    ///
    /// # Errors
    ///
    /// Returns [`ShardStateError`] for incomplete, duplicated or mismatched
    /// shard sets.
    pub fn merge(mut shards: Vec<ShardState>) -> Result<ShardState, ShardStateError> {
        let first = shards
            .first()
            .ok_or_else(|| ShardStateError::new("no shard files to merge"))?;
        let spec = first.spec.clone();
        let shard_count = first.shard.shard_count();
        if shards.len() != shard_count {
            return Err(ShardStateError::new(format!(
                "campaign has {shard_count} shards but {} files were provided",
                shards.len()
            )));
        }
        let labels: Vec<(String, Vec<String>)> = first
            .campaigns
            .iter()
            .map(|c| (c.label.clone(), c.scheme_names.clone()))
            .collect();
        for shard in &shards {
            if shard.spec != spec {
                return Err(ShardStateError::new(format!(
                    "shard {} was produced by a different campaign configuration",
                    shard.shard
                )));
            }
            if shard.shard.shard_count() != shard_count {
                return Err(ShardStateError::new(format!(
                    "shard {} disagrees on the shard count {shard_count}",
                    shard.shard
                )));
            }
            let shard_labels: Vec<(String, Vec<String>)> = shard
                .campaigns
                .iter()
                .map(|c| (c.label.clone(), c.scheme_names.clone()))
                .collect();
            if shard_labels != labels {
                return Err(ShardStateError::new(format!(
                    "shard {} disagrees on the campaign panels or scheme catalogue",
                    shard.shard
                )));
            }
        }
        shards.sort_by_key(|shard| shard.shard.shard_index());
        for (expected, shard) in shards.iter().enumerate() {
            if shard.shard.shard_index() != expected {
                return Err(ShardStateError::new(format!(
                    "shard {expected}/{shard_count} is missing or duplicated"
                )));
            }
        }

        let mut campaigns: Vec<ShardCampaignState> = labels
            .into_iter()
            .map(|(label, scheme_names)| {
                let scheme_count = scheme_names.len();
                ShardCampaignState {
                    label,
                    scheme_names,
                    accumulator: CatalogueAccumulator::new(scheme_count),
                }
            })
            .collect();
        for shard in shards {
            for (merged, part) in campaigns.iter_mut().zip(shard.campaigns) {
                merged.accumulator.merge(part.accumulator);
            }
        }
        Ok(ShardState {
            spec,
            shard: ShardSpec::solo(),
            campaigns,
        })
    }
}

/// Serialises a [`CdfSketch`] as its ordered `(value, weight)` observation
/// list.
#[must_use]
pub fn sketch_to_json(sketch: &CdfSketch) -> JsonValue {
    JsonValue::Array(
        sketch
            .observations()
            .iter()
            .map(|&(value, weight)| {
                JsonValue::Array(vec![JsonValue::Number(value), JsonValue::Number(weight)])
            })
            .collect(),
    )
}

/// Rebuilds a [`CdfSketch`] from its serialised observation list,
/// re-accumulating the order-sensitive total weight exactly.
///
/// # Errors
///
/// Returns [`ShardStateError`] when the document is not a list of
/// `[value, weight]` pairs.
pub fn sketch_from_json(value: &JsonValue) -> Result<CdfSketch, ShardStateError> {
    let observations = value
        .as_array()
        .ok_or_else(|| ShardStateError::new("sketch must be an array of [value, weight] pairs"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| ShardStateError::new("sketch entries must be [value, weight]"))?;
            let value = pair[0]
                .as_f64()
                .ok_or_else(|| ShardStateError::new("sketch values must be numbers"))?;
            let weight = pair[1]
                .as_f64()
                .ok_or_else(|| ShardStateError::new("sketch weights must be numbers"))?;
            Ok((value, weight))
        })
        .collect::<Result<Vec<_>, ShardStateError>>()?;
    Ok(CdfSketch::from_observations(observations))
}

/// Serialises a [`CatalogueAccumulator`]: one entry per scheme, each a list
/// of `{n, cdf}` per-failure-count sketches in ascending failure count.
#[must_use]
pub fn accumulator_to_json(accumulator: &CatalogueAccumulator) -> JsonValue {
    JsonValue::Array(
        accumulator
            .per_scheme_counts()
            .iter()
            .map(|per_count| {
                JsonValue::Array(
                    per_count
                        .iter()
                        .map(|(&n_faults, cdf)| {
                            JsonValue::object([
                                ("n", n_faults.to_json()),
                                ("cdf", sketch_to_json(cdf.sketch())),
                            ])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Rebuilds a [`CatalogueAccumulator`] from its serialised form.
///
/// # Errors
///
/// Returns [`ShardStateError`] for structural mismatches.
pub fn accumulator_from_json(value: &JsonValue) -> Result<CatalogueAccumulator, ShardStateError> {
    let per_scheme = value
        .as_array()
        .ok_or_else(|| ShardStateError::new("accumulator state must be an array of schemes"))?
        .iter()
        .map(|scheme| {
            let mut per_count = BTreeMap::new();
            for entry in scheme.as_array().ok_or_else(|| {
                ShardStateError::new("per-scheme state must be an array of {n, cdf} entries")
            })? {
                let n_faults = entry
                    .get("n")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| ShardStateError::new("count entry is missing 'n'"))?;
                let sketch = entry
                    .get("cdf")
                    .ok_or_else(|| ShardStateError::new("count entry is missing 'cdf'"))
                    .and_then(sketch_from_json)?;
                if per_count
                    .insert(n_faults, EmpiricalCdf::from_sketch(sketch))
                    .is_some()
                {
                    return Err(ShardStateError::new(format!(
                        "duplicate failure count {n_faults} in accumulator state"
                    )));
                }
            }
            Ok(per_count)
        })
        .collect::<Result<Vec<_>, ShardStateError>>()?;
    Ok(CatalogueAccumulator::from_per_scheme_counts(per_scheme))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureKind;
    use crate::RunOptions;
    use faultmit_sim::PairedSample;

    fn sample(index: u64, n_faults: u64, metrics: &[f64]) -> PairedSample {
        PairedSample {
            sample_index: index,
            n_faults,
            weight: 0.125 + index as f64 * 1e-3,
            metrics: metrics.to_vec(),
        }
    }

    fn spec() -> FigureSpec {
        FigureSpec::from_options(FigureKind::Fig5, &RunOptions::default())
    }

    #[test]
    fn empty_sketch_round_trips() {
        let sketch = CdfSketch::new();
        let round = sketch_from_json(&sketch_to_json(&sketch)).unwrap();
        assert_eq!(round, sketch);
        assert_eq!(round.total_weight().to_bits(), 0f64.to_bits());
    }

    #[test]
    fn single_sample_sketch_round_trips_bit_exactly() {
        let mut sketch = CdfSketch::new();
        sketch.push(1.0 / 3.0, 5e-324_f64.max(1e-17));
        let round = sketch_from_json(&sketch_to_json(&sketch)).unwrap();
        assert_eq!(round, sketch);
        assert_eq!(
            round.total_weight().to_bits(),
            sketch.total_weight().to_bits()
        );
    }

    #[test]
    fn sketch_round_trip_preserves_order_sensitive_weight_sums() {
        let mut sketch = CdfSketch::new();
        for (i, w) in [1e-3, 1e16, 1.0, 1e-7, 3.5, 1e12].into_iter().enumerate() {
            sketch.push(i as f64 * 0.1, w);
        }
        let text = sketch_to_json(&sketch).to_pretty_string();
        let round = sketch_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round, sketch);
        assert_eq!(
            round.total_weight().to_bits(),
            sketch.total_weight().to_bits()
        );
    }

    #[test]
    fn empty_accumulator_round_trips() {
        for accumulator in [
            CatalogueAccumulator::default(),
            CatalogueAccumulator::new(3),
        ] {
            let round = accumulator_from_json(&accumulator_to_json(&accumulator)).unwrap();
            assert_eq!(round, accumulator);
        }
    }

    #[test]
    fn populated_accumulator_round_trips_through_text() {
        let mut accumulator = CatalogueAccumulator::new(2);
        accumulator.record(&sample(0, 1, &[10.0, 0.5]));
        accumulator.record(&sample(1, 1, &[20.0, 1.0 / 3.0]));
        accumulator.record(&sample(2, 4, &[30.0, 0.125]));
        let text = accumulator_to_json(&accumulator).to_pretty_string();
        let round = accumulator_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round, accumulator);
    }

    #[test]
    fn malformed_state_documents_are_rejected() {
        assert!(sketch_from_json(&JsonValue::Null).is_err());
        assert!(sketch_from_json(&JsonValue::parse("[[1.0]]").unwrap()).is_err());
        assert!(sketch_from_json(&JsonValue::parse("[[1.0, true]]").unwrap()).is_err());
        assert!(accumulator_from_json(&JsonValue::parse("[{}]").unwrap()).is_err());
        assert!(accumulator_from_json(
            &JsonValue::parse("[[{\"n\": 1, \"cdf\": []}, {\"n\": 1, \"cdf\": []}]]").unwrap()
        )
        .is_err());
        assert!(ShardState::parse("not json").is_err());
        assert!(ShardState::parse("{\"format\": \"other/v9\"}").is_err());
    }

    #[test]
    fn shard_state_round_trips_and_matches() {
        let mut accumulator = CatalogueAccumulator::new(1);
        accumulator.record(&sample(0, 2, &[7.5]));
        let state = ShardState {
            spec: spec(),
            shard: ShardSpec::new(1, 3).unwrap(),
            campaigns: vec![ShardCampaignState {
                label: "fig5".to_owned(),
                scheme_names: vec!["no-correction".to_owned()],
                accumulator,
            }],
        };
        let text = state.to_json().to_pretty_string();
        let round = ShardState::parse(&text).unwrap();
        assert_eq!(round, state);
        assert!(round.matches(&spec(), ShardSpec::new(1, 3).unwrap()));
        assert!(!round.matches(&spec(), ShardSpec::new(0, 3).unwrap()));
        let other_spec = FigureSpec {
            samples_per_count: 99,
            ..spec()
        };
        assert!(!round.matches(&other_spec, ShardSpec::new(1, 3).unwrap()));
    }

    fn shard_with(index: usize, count: usize, values: &[f64]) -> ShardState {
        let mut accumulator = CatalogueAccumulator::new(1);
        for (i, &value) in values.iter().enumerate() {
            accumulator.record(&sample(i as u64, 1, &[value]));
        }
        ShardState {
            spec: spec(),
            shard: ShardSpec::new(index, count).unwrap(),
            campaigns: vec![ShardCampaignState {
                label: "fig5".to_owned(),
                scheme_names: vec!["no-correction".to_owned()],
                accumulator,
            }],
        }
    }

    #[test]
    fn merge_folds_shards_in_index_order_regardless_of_input_order() {
        let merged = ShardState::merge(vec![
            shard_with(2, 3, &[5.0]),
            shard_with(0, 3, &[1.0, 2.0]),
            shard_with(1, 3, &[3.0]),
        ])
        .unwrap();
        assert!(merged.shard.is_solo());
        let values: Vec<f64> = merged.campaigns[0].accumulator.per_scheme_counts()[0][&1]
            .samples()
            .map(|(v, _)| v)
            .collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0, 5.0]);
    }

    #[test]
    fn merge_rejects_incomplete_or_mismatched_shard_sets() {
        assert!(ShardState::merge(vec![]).is_err());
        // Missing shard 1 of 3.
        assert!(
            ShardState::merge(vec![shard_with(0, 3, &[1.0]), shard_with(2, 3, &[2.0])]).is_err()
        );
        // Duplicate shard index.
        assert!(
            ShardState::merge(vec![shard_with(0, 2, &[1.0]), shard_with(0, 2, &[2.0])]).is_err()
        );
        // Conflicting spec.
        let mut foreign = shard_with(1, 2, &[2.0]);
        foreign.spec.samples_per_count = 7;
        assert!(ShardState::merge(vec![shard_with(0, 2, &[1.0]), foreign]).is_err());
        // Conflicting catalogue.
        let mut renamed = shard_with(1, 2, &[2.0]);
        renamed.campaigns[0].scheme_names[0] = "other".to_owned();
        assert!(ShardState::merge(vec![shard_with(0, 2, &[1.0]), renamed]).is_err());
    }
}
