//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every campaign binary in `src/bin/` is a thin shim over the [`figures`]
//! registry: one [`figures::FigureDef`] per figure describes the campaign
//! configuration, per-panel accumulator shape and series rendering, so the
//! monolithic binaries, the `campaign_shard`/`campaign_merge` pair and the
//! `campaign_run` multi-process driver all share one code path and render
//! **byte-identical** JSON. With `--json <path>` (alias `--out`) the series
//! is written as a machine-readable document (via the in-tree [`json`]
//! emitter and parser — the offline build has no `serde_json`) so
//! EXPERIMENTS.md values can be traced; [`shard`] serialises every
//! accumulator shape of the registry for resumable, distributed campaigns.
//!
//! All command-line handling lives in the [`cli`] module: `--threads N`
//! pins the fault-injection pipeline's worker count, `--samples N`
//! overrides the Monte-Carlo budget, `--backend sram|dram|mlc` selects
//! the fault-generation technology so every binary picks up new
//! [`faultmit_memsim::backend`] implementations for free, and
//! `--figure/--shards/--jobs/--retries/--dir` drive sharded execution.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod figures;
pub mod json;
pub mod metrics;
pub mod shard;

pub use cli::RunOptions;
