//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the experiment index) and prints the corresponding
//! rows/series; with `--json <path>` the same series is written as a
//! machine-readable JSON document so EXPERIMENTS.md values can be traced.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::Serialize;
use std::path::PathBuf;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Run at the paper's full scale (slower); the default is a reduced but
    /// shape-preserving configuration.
    pub full_scale: bool,
    /// Optional path to write the JSON series to.
    pub json_path: Option<PathBuf>,
    /// Positional arguments (e.g. the benchmark selector of `fig7_quality`).
    pub positional: Vec<String>,
}

impl RunOptions {
    /// Parses options from the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit iterator (used in tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" | "--full-scale" => options.full_scale = true,
                "--json" => {
                    if let Some(path) = iter.next() {
                        options.json_path = Some(PathBuf::from(path));
                    }
                }
                _ => options.positional.push(arg),
            }
        }
        options
    }

    /// Writes `value` as pretty JSON to the configured path, if any.
    ///
    /// # Errors
    ///
    /// Propagates serialisation and I/O errors.
    pub fn write_json<T: Serialize>(&self, value: &T) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.json_path {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, serde_json::to_string_pretty(value)?)?;
            println!("wrote JSON series to {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_flags_and_positionals() {
        let opts = RunOptions::parse(
            ["--full", "elasticnet", "--json", "out/series.json"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.full_scale);
        assert_eq!(opts.positional, vec!["elasticnet".to_owned()]);
        assert_eq!(opts.json_path, Some(PathBuf::from("out/series.json")));
    }

    #[test]
    fn parse_defaults_are_empty() {
        let opts = RunOptions::parse(std::iter::empty());
        assert!(!opts.full_scale);
        assert!(opts.json_path.is_none());
        assert!(opts.positional.is_empty());
    }

    #[test]
    fn missing_json_value_is_ignored() {
        let opts = RunOptions::parse(["--json".to_owned()]);
        assert!(opts.json_path.is_none());
    }

    #[test]
    fn write_json_without_path_is_a_no_op() {
        let opts = RunOptions::default();
        opts.write_json(&vec![1, 2, 3]).unwrap();
    }

    #[test]
    fn write_json_creates_parent_directories() {
        let dir = std::env::temp_dir().join("faultmit-bench-test");
        let path = dir.join("nested").join("series.json");
        let opts = RunOptions {
            json_path: Some(path.clone()),
            ..RunOptions::default()
        };
        opts.write_json(&serde_json::json!({"ok": true})).unwrap();
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
