//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the experiment index) and prints the corresponding
//! rows/series; with `--json <path>` the same series is written as a
//! machine-readable JSON document (via the in-tree [`json`] emitter — the
//! offline build has no `serde_json`) so EXPERIMENTS.md values can be
//! traced. `--threads N` pins the fault-injection pipeline's worker count
//! (`--threads 1` forces the serial path; the default uses every CPU).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod json;

use faultmit_sim::Parallelism;
use json::ToJson;
use std::path::PathBuf;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Run at the paper's full scale (slower); the default is a reduced but
    /// shape-preserving configuration.
    pub full_scale: bool,
    /// Optional path to write the JSON series to.
    pub json_path: Option<PathBuf>,
    /// Optional worker-thread count for the simulation pipeline
    /// (`None` = one worker per CPU).
    pub threads: Option<usize>,
    /// Positional arguments (e.g. the benchmark selector of `fig7_quality`).
    pub positional: Vec<String>,
}

impl RunOptions {
    /// Parses options from the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit iterator (used in tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter().peekable();
        // A flag's value is only consumed when the next token is not itself
        // a flag, so `--threads --full` complains instead of silently eating
        // `--full`.
        let next_value = |iter: &mut std::iter::Peekable<I::IntoIter>, flag: &str| match iter.peek()
        {
            Some(value) if !value.starts_with("--") => iter.next(),
            _ => {
                eprintln!("{flag} requires a value; ignoring");
                None
            }
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" | "--full-scale" => options.full_scale = true,
                "--json" => {
                    if let Some(path) = next_value(&mut iter, "--json") {
                        options.json_path = Some(PathBuf::from(path));
                    }
                }
                "--threads" => {
                    if let Some(count) =
                        next_value(&mut iter, "--threads").and_then(|v| v.parse().ok())
                    {
                        options.threads = Some(count);
                    }
                }
                _ => options.positional.push(arg),
            }
        }
        options
    }

    /// The pipeline worker policy implied by `--threads` (defaults to one
    /// worker per CPU).
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        match self.threads {
            Some(threads) => Parallelism::threads(threads),
            None => Parallelism::Auto,
        }
    }

    /// Writes `value` as pretty JSON to the configured path, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json<T: ToJson + ?Sized>(
        &self,
        value: &T,
    ) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.json_path {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, value.to_json().to_pretty_string())?;
            println!("wrote JSON series to {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use json::JsonValue;

    #[test]
    fn parse_recognises_flags_and_positionals() {
        let opts = RunOptions::parse(
            [
                "--full",
                "elasticnet",
                "--json",
                "out/series.json",
                "--threads",
                "4",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        assert!(opts.full_scale);
        assert_eq!(opts.positional, vec!["elasticnet".to_owned()]);
        assert_eq!(opts.json_path, Some(PathBuf::from("out/series.json")));
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.parallelism(), Parallelism::threads(4));
    }

    #[test]
    fn parse_defaults_are_empty() {
        let opts = RunOptions::parse(std::iter::empty());
        assert!(!opts.full_scale);
        assert!(opts.json_path.is_none());
        assert!(opts.threads.is_none());
        assert!(opts.positional.is_empty());
        assert_eq!(opts.parallelism(), Parallelism::Auto);
    }

    #[test]
    fn missing_json_value_is_ignored() {
        let opts = RunOptions::parse(["--json".to_owned()]);
        assert!(opts.json_path.is_none());
        // A non-numeric --threads value is consumed and ignored.
        let opts = RunOptions::parse(["--threads".to_owned(), "abc".to_owned()]);
        assert!(opts.threads.is_none());
        assert!(opts.positional.is_empty());
    }

    #[test]
    fn write_json_without_path_is_a_no_op() {
        let opts = RunOptions::default();
        opts.write_json(&vec![1.0, 2.0, 3.0]).unwrap();
    }

    #[test]
    fn write_json_creates_parent_directories() {
        let dir = std::env::temp_dir().join("faultmit-bench-test");
        let path = dir.join("nested").join("series.json");
        let opts = RunOptions {
            json_path: Some(path.clone()),
            ..RunOptions::default()
        };
        opts.write_json(&JsonValue::object([("ok", true.to_json())]))
            .unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"ok\": true"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
