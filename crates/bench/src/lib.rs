//! Shared helpers for the figure-regeneration binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md for the experiment index) and prints the corresponding
//! rows/series; with `--json <path>` (alias `--out`) the same series is
//! written as a machine-readable JSON document (via the in-tree [`json`]
//! emitter — the offline build has no `serde_json`) so EXPERIMENTS.md
//! values can be traced.
//!
//! All command-line handling lives in the [`cli`] module: `--threads N`
//! pins the fault-injection pipeline's worker count, `--samples N`
//! overrides the Monte-Carlo budget, and `--backend sram|dram|mlc` selects
//! the fault-generation technology so every binary picks up new
//! [`faultmit_memsim::backend`] implementations for free.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod figures;
pub mod json;
pub mod shard;

pub use cli::RunOptions;
