//! A small JSON document model and emitter.
//!
//! The offline build has no `serde_json`, so the figure binaries build their
//! machine-readable series through this module instead: construct a
//! [`JsonValue`] (usually via [`ToJson`]) and render it with
//! [`JsonValue::to_pretty_string`]. The emitter covers exactly what the
//! EXPERIMENTS flow needs — objects, arrays, strings, finite and non-finite
//! numbers, booleans and nulls — with standard JSON escaping.

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no NaN/Inf).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<I>(fields: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(key, value)| (key.to_owned(), value))
                .collect(),
        )
    }

    /// Builds an array by converting each element.
    #[must_use]
    pub fn array<T: ToJson, I: IntoIterator<Item = T>>(items: I) -> Self {
        JsonValue::Array(items.into_iter().map(|item| item.to_json()).collect())
    }

    /// Renders the document with two-space indentation.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            JsonValue::Number(value) => {
                if value.is_finite() {
                    if *value == value.trunc() && value.abs() < 1e15 {
                        // Integral values print without a fraction, like serde_json.
                        out.push_str(&format!("{}", *value as i64));
                    } else {
                        out.push_str(&format!("{value}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(value) => write_escaped(out, value),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the JSON document model.
pub trait ToJson {
    /// Converts `self` into a JSON node.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Number(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Number(*self as f64)
            }
        }
    )*};
}

int_to_json!(i32, i64, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(value) => value.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_pretty_string(), "null");
        assert_eq!(true.to_json().to_pretty_string(), "true");
        assert_eq!(3.0f64.to_json().to_pretty_string(), "3");
        assert_eq!(3.5f64.to_json().to_pretty_string(), "3.5");
        assert_eq!(f64::NAN.to_json().to_pretty_string(), "null");
        assert_eq!(42usize.to_json().to_pretty_string(), "42");
        assert_eq!("hi".to_json().to_pretty_string(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let rendered = "a\"b\\c\nd".to_json().to_pretty_string();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let doc = JsonValue::object([
            ("name", "fig5".to_json()),
            ("cdf", vec![(1.0, 0.5), (2.0, 1.0)].to_json()),
            ("missing", Option::<f64>::None.to_json()),
        ]);
        let rendered = doc.to_pretty_string();
        assert!(rendered.contains("\"name\": \"fig5\""));
        assert!(rendered.contains("\"missing\": null"));
        // Round-trip sanity: balanced brackets, nested array present.
        assert_eq!(rendered.matches('[').count(), rendered.matches(']').count());
        assert!(rendered.contains("0.5"));
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(JsonValue::Array(vec![]).to_pretty_string(), "[]");
        assert_eq!(JsonValue::Object(vec![]).to_pretty_string(), "{}");
    }
}
