//! A small JSON document model, emitter and parser.
//!
//! The offline build has no `serde_json`, so the figure binaries build their
//! machine-readable series through this module instead: construct a
//! [`JsonValue`] (usually via [`ToJson`]) and render it with
//! [`JsonValue::to_pretty_string`]. The emitter covers exactly what the
//! EXPERIMENTS flow needs — objects, arrays, strings, finite and non-finite
//! numbers, booleans and nulls — with standard JSON escaping.
//!
//! [`JsonValue::parse`] is the inverse: a recursive-descent parser for
//! standard JSON used by the sharded-campaign machinery to read shard-state
//! checkpoints back. Numbers parse through [`str::parse::<f64>`], and the
//! emitter prints floats with Rust's shortest round-trippable
//! representation, so an emit → parse cycle reproduces every finite `f64`
//! bit-for-bit — the property the byte-identical shard-merge invariant
//! rests on. The single exception is `-0.0`, which the emitter has always
//! normalised to `"0"` (the byte format of every historical figure JSON):
//! shard-state observations tolerate this because CDF weights are strictly
//! positive and `±0.0` *values* are indistinguishable to every CDF query —
//! comparisons, quantiles and weight sums — so normalisation cannot change
//! a rendered figure byte.

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no NaN/Inf).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<I>(fields: I) -> Self
    where
        I: IntoIterator<Item = (&'static str, JsonValue)>,
    {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(key, value)| (key.to_owned(), value))
                .collect(),
        )
    }

    /// Builds an array by converting each element.
    #[must_use]
    pub fn array<T: ToJson, I: IntoIterator<Item = T>>(items: I) -> Self {
        JsonValue::Array(items.into_iter().map(|item| item.to_json()).collect())
    }

    /// Renders the document with two-space indentation.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Parses a JSON document (the inverse of
    /// [`JsonValue::to_pretty_string`]).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with a byte offset and reason for
    /// malformed input or trailing garbage.
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The number carried by this node, if it is one (`null` is *not* a
    /// number even though non-finite numbers emit as `null`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(value) => Some(*value),
            _ => None,
        }
    }

    /// The number as an exactly-representable unsigned integer, if it is
    /// one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(value)
                if *value >= 0.0 && value.trunc() == *value && *value < 2f64.powi(53) =>
            {
                Some(*value as u64)
            }
            _ => None,
        }
    }

    /// The string carried by this node, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(value) => Some(value),
            _ => None,
        }
    }

    /// The boolean carried by this node, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(value) => Some(*value),
            _ => None,
        }
    }

    /// The elements of this node, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` fields of this node, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up a field of an object node (first match wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(field, _)| field == key)
            .map(|(_, value)| value)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            JsonValue::Number(value) => {
                if value.is_finite() {
                    if *value == value.trunc() && value.abs() < 1e15 {
                        // Integral values print without a fraction, like
                        // serde_json. Note this normalises -0.0 to "0" (the
                        // format every historical figure JSON was emitted
                        // in; empty f64 iterator sums are -0.0, so figure
                        // probabilities do hit this case) — see the module
                        // docs for why the shard-state round-trip tolerates
                        // it.
                        out.push_str(&format!("{}", *value as i64));
                    } else {
                        // Shortest representation that round-trips the
                        // exact f64.
                        out.push_str(&format!("{value}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::String(value) => write_escaped(out, value),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Error produced by [`JsonValue::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, reason: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            reason: reason.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 characters in one go.
            while !matches!(self.peek(), None | Some(b'"' | b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("unfinished escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs are not emitted by our writer
                            // (it escapes only control characters), but
                            // accept them for standard-JSON compatibility.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined = 0x10000
                                            + ((u32::from(code) - 0xD800) << 10)
                                            + (u32::from(low) - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        // A high surrogate must be followed
                                        // by a low surrogate.
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(code))
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                None => return Err(self.error("unterminated string")),
                _ => unreachable!("loop consumes all plain characters"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonParseError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|slice| std::str::from_utf8(slice).ok())
            .ok_or_else(|| self.error("expected 4 hex digits"))?;
        let code =
            u16::from_str_radix(digits, 16).map_err(|_| self.error("expected 4 hex digits"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number spans are plain ASCII");
        match text.parse::<f64>() {
            // Literals like `1e999` overflow to ±inf, which the emitter can
            // never have produced (non-finite numbers emit as `null`), so
            // accepting them would silently break the emit → parse
            // round-trip invariant shard state rests on.
            Ok(value) if value.is_finite() => Ok(JsonValue::Number(value)),
            Ok(_) => Err(self.error(&format!("number '{text}' out of f64 range"))),
            Err(_) => Err(self.error(&format!("invalid number '{text}'"))),
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the JSON document model.
pub trait ToJson {
    /// Converts `self` into a JSON node.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for JsonValue {
    fn to_json(&self) -> JsonValue {
        self.clone()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::Number(*self)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> JsonValue {
        JsonValue::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::String(self.clone())
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> JsonValue {
                JsonValue::Number(*self as f64)
            }
        }
    )*};
}

int_to_json!(i32, i64, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> JsonValue {
        match self {
            Some(value) => value.to_json(),
            None => JsonValue::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> JsonValue {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> JsonValue {
        JsonValue::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_pretty_string(), "null");
        assert_eq!(true.to_json().to_pretty_string(), "true");
        assert_eq!(3.0f64.to_json().to_pretty_string(), "3");
        assert_eq!(3.5f64.to_json().to_pretty_string(), "3.5");
        assert_eq!(f64::NAN.to_json().to_pretty_string(), "null");
        assert_eq!(42usize.to_json().to_pretty_string(), "42");
        assert_eq!("hi".to_json().to_pretty_string(), "\"hi\"");
    }

    #[test]
    fn strings_are_escaped() {
        let rendered = "a\"b\\c\nd".to_json().to_pretty_string();
        assert_eq!(rendered, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let doc = JsonValue::object([
            ("name", "fig5".to_json()),
            ("cdf", vec![(1.0, 0.5), (2.0, 1.0)].to_json()),
            ("missing", Option::<f64>::None.to_json()),
        ]);
        let rendered = doc.to_pretty_string();
        assert!(rendered.contains("\"name\": \"fig5\""));
        assert!(rendered.contains("\"missing\": null"));
        // Round-trip sanity: balanced brackets, nested array present.
        assert_eq!(rendered.matches('[').count(), rendered.matches(']').count());
        assert!(rendered.contains("0.5"));
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(JsonValue::Array(vec![]).to_pretty_string(), "[]");
        assert_eq!(JsonValue::Object(vec![]).to_pretty_string(), "{}");
    }

    #[test]
    fn parse_handles_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Number(42.0));
        assert_eq!(
            JsonValue::parse("-3.5e2").unwrap(),
            JsonValue::Number(-350.0)
        );
        assert_eq!(
            JsonValue::parse("\"hi\\n\\\"there\\\"\"").unwrap(),
            JsonValue::String("hi\n\"there\"".to_owned())
        );
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\"").unwrap(),
            JsonValue::String("Aé".to_owned())
        );
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::String("😀".to_owned())
        );
    }

    #[test]
    fn parse_handles_nested_containers() {
        let doc = JsonValue::parse(
            r#"{ "name": "fig5", "cdf": [[1.0, 0.5], [2, 1]], "flags": {"full": false}, "x": null }"#,
        )
        .unwrap();
        assert_eq!(doc.get("name").unwrap().as_str(), Some("fig5"));
        let cdf = doc.get("cdf").unwrap().as_array().unwrap();
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0].as_array().unwrap()[1].as_f64(), Some(0.5));
        assert_eq!(
            doc.get("flags").unwrap().get("full").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(doc.get("x"), Some(&JsonValue::Null));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Array(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Object(vec![]));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "nul",
            "truee",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "{\"a\":}",
            "\"open",
            "1..2",
            "[1] trailing",
            "{\"a\":1,}x",
            "\"\\q\"",
            "\"\\u12\"",
            // A high surrogate must pair with a low surrogate.
            "\"\\ud800\\u0041\"",
            "\"\\ud800x\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_truncated_documents_with_positions() {
        // Truncation at every structural depth: the error carries the byte
        // offset where input ran out.
        for bad in [
            "{",
            "{\"a\"",
            "{\"a\":",
            "{\"a\": 1",
            "{\"a\": 1,",
            "[",
            "[1",
            "[1,",
            "[[1, 2]",
            "\"half a stri",
            "\"escape at the end\\",
            "\"\\u00",
            "-",
            "tr",
            "{\"nested\": {\"deep\": [",
        ] {
            let error = JsonValue::parse(bad).unwrap_err();
            assert!(
                error.offset <= bad.len(),
                "offset {} beyond input {bad:?}",
                error.offset
            );
            assert!(!error.reason.is_empty(), "empty reason for {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_trailing_garbage_after_any_document() {
        for bad in [
            "null null",
            "1 2",
            "{} {}",
            "[] ,",
            "\"done\" x",
            "{\"a\": 1}[]",
            "3.5e2 // comment",
        ] {
            let error = JsonValue::parse(bad).unwrap_err();
            assert!(error.reason.contains("trailing"), "{bad:?} gave: {error}");
        }
    }

    #[test]
    fn parse_rejects_bad_escapes() {
        for bad in [
            "\"\\x41\"",
            "\"\\U0041\"",
            "\"\\u00zz\"",
            "\"\\ \"",
            "\"\\'\"",
            // Lone low surrogate and unpaired high surrogate.
            "\"\\udc00\"",
            "\"\\ud800\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_rejects_non_finite_number_literals() {
        // JSON has no NaN/Infinity tokens…
        for bad in ["NaN", "nan", "Infinity", "-Infinity", "inf", "-inf"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
        // …and literals that overflow f64 to ±inf must not sneak a
        // non-finite number past the emitter's null convention.
        for bad in ["1e999", "-1e999", "1e308999"] {
            let error = JsonValue::parse(bad).unwrap_err();
            assert!(
                error.reason.contains("out of f64 range"),
                "{bad:?} gave: {error}"
            );
        }
        // The largest finite values still parse exactly.
        let max = format!("{}", f64::MAX);
        assert_eq!(
            JsonValue::parse(&max).unwrap().as_f64().unwrap().to_bits(),
            f64::MAX.to_bits()
        );
        // Subnormal underflow to zero is fine (it is finite).
        assert_eq!(JsonValue::parse("1e-999").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn emit_parse_round_trip_preserves_f64_bits() {
        let values = [
            0.0,
            1.0,
            -1.0,
            0.1,
            1.0 / 3.0,
            1e-300,
            -2.5e300,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            987654321.125,
            5e-6,
            2f64.powi(52) + 1.0,
        ];
        for value in values {
            let rendered = JsonValue::Number(value).to_pretty_string();
            let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(
                parsed.to_bits(),
                value.to_bits(),
                "{value} rendered as {rendered} re-parsed as {parsed}"
            );
        }
        // A deterministic pseudo-random sweep over the f64 space.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let value = f64::from_bits(state);
            if !value.is_finite() {
                continue;
            }
            let rendered = JsonValue::Number(value).to_pretty_string();
            let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), value.to_bits(), "{value} via {rendered}");
        }
    }

    #[test]
    fn negative_zero_keeps_its_historical_rendering() {
        // Empty f64 iterator sums are -0.0, so figure probabilities hit
        // this path; the byte format of the historical figure JSON ("0")
        // wins over sign preservation. Parsing normalises to +0.0 — safe
        // for shard state because ±0.0 are indistinguishable to every CDF
        // query and weights are strictly positive.
        let rendered = JsonValue::Number(-0.0).to_pretty_string();
        assert_eq!(rendered, "0");
        let parsed = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
        assert_eq!(parsed.to_bits(), 0f64.to_bits());
    }

    #[test]
    fn structured_documents_round_trip() {
        let doc = JsonValue::object([
            ("name", "shard \"0\"\n".to_json()),
            ("cdf", vec![(1.5, 0.25), (2.0, 0.75)].to_json()),
            ("count", 3u64.to_json()),
            ("none", JsonValue::Null),
            ("ok", true.to_json()),
            ("empty", JsonValue::Array(vec![])),
        ]);
        let rendered = doc.to_pretty_string();
        assert_eq!(JsonValue::parse(&rendered).unwrap(), doc);
    }

    #[test]
    fn accessors_discriminate_types() {
        assert_eq!(JsonValue::Number(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
        assert_eq!(JsonValue::Null.as_f64(), None);
        assert_eq!(JsonValue::Bool(true).as_str(), None);
        assert_eq!(JsonValue::String("x".into()).as_array(), None);
        assert_eq!(JsonValue::Array(vec![]).as_object(), None);
    }
}
