//! The one command-line parser shared by every figure/ablation binary.
//!
//! Historically each binary hand-rolled its flag handling; this module
//! centralises it so a flag added here (like the `--backend` technology
//! axis) is picked up by all of them at once. Recognised flags:
//!
//! * `--full` / `--full-scale` — run at the paper's full Monte-Carlo scale;
//! * `--json <path>` (alias `--out <path>`) — write the machine-readable
//!   series;
//! * `--threads <n>` — pin the pipeline worker count (`1` = serial);
//! * `--samples <n>` — override the number of fault maps per failure count;
//! * `--backend <sram|dram|mlc>` — select the fault-generation technology
//!   ([`faultmit_memsim::backend`]); the default is the paper's SRAM model;
//! * `--shard <I/K>` — evaluate only shard `I` of a `K`-way campaign split
//!   (the `campaign_shard` axis; see [`faultmit_sim::ShardSpec`]);
//! * `--figure <name>` — select a figure from the
//!   [`crate::figures`] registry (the `campaign_shard` / `campaign_merge` /
//!   `campaign_run` axis);
//! * `--shards <K>` / `--jobs <J>` / `--retries <R>` / `--dir <path>` —
//!   `campaign_run` driver controls: split the campaign into `K` shards,
//!   run at most `J` `campaign_shard` child processes at a time, retry a
//!   failed shard up to `R` times, and keep shard checkpoints under `path`;
//! * `--t-ref-ns <ns>` / `--temp-c <C>` — DRAM-retention operating-point
//!   sweep controls: pin the refresh interval (switching `fig2`'s DRAM
//!   analogue to a temperature sweep) or set the sweep temperature (see
//!   [`LawSweep`]);
//! * `--image <spec>` — the data image a data-aware campaign evaluates
//!   faults against (`zeros|ones|random[:seed]|sparse[:seed]|wine|`
//!   `madelon|har`, see [`faultmit_memsim::image`]); `fig9_data_sensitivity`
//!   restricts its image sweep to the given image;
//! * `--kind-law <law>` — how faulty cells behave (`flip|stuck-at|`
//!   `stuck-at:P` with `P = Pr(stuck at 0)`, see
//!   [`faultmit_memsim::FaultKindLaw`]); honoured by
//!   `fig8_backend_matrix` and `fig9_data_sensitivity`;
//! * `--kernel <scalar|sparse|bitsliced|bitsliced256|auto>` — the
//!   Monte-Carlo evaluation kernel ([`faultmit_sim::KernelKind`]); every
//!   kernel produces bit-identical campaign state, so this selects
//!   throughput only (`auto` picks sparse or bitsliced256 from the
//!   campaign's fault density). Honoured by the MSE catalogue campaigns
//!   (`fig5_mse_cdf`, `fig8_backend_matrix`, `fig9_data_sensitivity`);
//! * `--wide-generation <on|off>` — force the lane-interleaved block fault
//!   generation path on or off (default on; bit-identical either way, a
//!   generation-throughput knob for the same catalogue campaigns);
//! * `--auto-threshold <f/row>` — override the `auto` kernel's density
//!   threshold in expected faults per row (requires `--kernel auto`; see
//!   [`faultmit_sim::AUTO_FAULTS_PER_ROW_THRESHOLD`]).
//!
//! Anything else is collected as a positional argument (e.g. the benchmark
//! selector of `fig7_quality`).

use crate::json::ToJson;
use faultmit_memsim::{
    BackendKind, DramRetentionBackend, FaultBackend, FaultKindLaw, ImageSpec, MemError,
    MemoryConfig, MlcNvmBackend,
};
use faultmit_sim::{KernelKind, Parallelism, ShardSpec};
use std::path::PathBuf;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Run at the paper's full scale (slower); the default is a reduced but
    /// shape-preserving configuration.
    pub full_scale: bool,
    /// Optional path to write the JSON series to (`--json` / `--out`).
    pub json_path: Option<PathBuf>,
    /// Optional path to write the aggregated metrics report to
    /// (`--metrics <path>`). Metrics never feed back into panel states, so
    /// figure JSON stays byte-identical whether or not this is set.
    pub metrics_path: Option<PathBuf>,
    /// Optional worker-thread count for the simulation pipeline
    /// (`None` = one worker per CPU).
    pub threads: Option<usize>,
    /// Optional override of the Monte-Carlo samples per failure count.
    pub samples: Option<usize>,
    /// Fault-generation technology selected with `--backend`
    /// (`None` = the paper's SRAM model).
    pub backend: Option<BackendKind>,
    /// Campaign shard selected with `--shard I/K`
    /// (`None` = run the whole campaign, i.e. the `0/1` shard).
    pub shard: Option<ShardSpec>,
    /// Set when a `--shard` value was present but unparseable. Binaries for
    /// which the shard slice is load-bearing (`campaign_shard`) must treat
    /// this as fatal rather than fall back to the monolithic shard and
    /// silently recompute the whole campaign.
    pub shard_error: Option<String>,
    /// Figure selected with `--figure <name>` (a [`crate::figures`]
    /// registry name; `None` = take the figure from the first positional
    /// argument, the historical `campaign_shard` convention).
    pub figure: Option<String>,
    /// Campaign split requested with `--shards K` (`campaign_run`).
    pub shards: Option<usize>,
    /// Maximum concurrent shard child processes, `--jobs J`
    /// (`campaign_run`).
    pub jobs: Option<usize>,
    /// Per-shard retry budget, `--retries R` (`campaign_run`).
    pub retries: Option<usize>,
    /// Shard-checkpoint directory, `--dir <path>` (`campaign_run`).
    pub dir: Option<PathBuf>,
    /// Unparseable values seen for the driver flags
    /// (`--shards`/`--jobs`/`--retries`). `campaign_run` treats these as
    /// fatal: a typo in `--shards` must not silently degrade a K-way
    /// campaign to a monolithic run (the same policy `--shard` has via
    /// [`RunOptions::shard_error`]).
    pub driver_flag_errors: Vec<String>,
    /// Fixed DRAM refresh interval in nanoseconds (`--t-ref-ns`); when set,
    /// the `fig2` DRAM analogue sweeps the temperature axis at this refresh
    /// interval instead of sweeping the refresh interval itself.
    pub t_ref_ns: Option<f64>,
    /// DRAM die temperature in °C (`--temp-c`) used by the refresh-interval
    /// sweep (`None` = the 45 °C reference).
    pub temp_c: Option<f64>,
    /// Data image selected with `--image <spec>` (`None` = the figure's
    /// default — the all-zeros background for single-image campaigns, the
    /// full image sweep for `fig9_data_sensitivity`).
    pub image: Option<ImageSpec>,
    /// Fault-kind law selected with `--kind-law <law>` (`None` = the
    /// figure's default).
    pub kind_law: Option<FaultKindLaw>,
    /// Evaluation kernel selected with `--kernel <name>` (`None` = the
    /// engine default, the event-driven sparse kernel). Kernels are
    /// bit-identical, so this is a throughput knob — but it is still part
    /// of the campaign spec so shard checkpoints record which kernel
    /// produced them.
    pub kernel: Option<KernelKind>,
    /// Wide-generation toggle selected with `--wide-generation <on|off>`
    /// (`None` = the engine default, on). An identity-free tuning knob: the
    /// lane-interleaved generation path is bit-identical to the scalar one,
    /// so this selects generation throughput only. Only the block kernels
    /// of the MSE catalogue campaigns generate through it; elsewhere the
    /// toggle is inert.
    pub wide_generation: Option<bool>,
    /// Density threshold override for the `auto` kernel in expected faults
    /// per row, `--auto-threshold <f/row>` (`None` = the engine default,
    /// [`faultmit_sim::AUTO_FAULTS_PER_ROW_THRESHOLD`]). Identity-free like
    /// [`RunOptions::wide_generation`], but it can flip which kernel `auto`
    /// resolves to, so shard checkpoints record it and the merge validates
    /// it across the set. Requires `--kernel auto`.
    pub auto_threshold: Option<f64>,
    /// Unparseable values seen for the engine-tuning flags
    /// (`--wide-generation`/`--auto-threshold`). The campaign entry points
    /// treat these as fatal: a typo in `--auto-threshold` must not silently
    /// run (and record telemetry for) a different tuning than the one the
    /// user asked for.
    pub tuning_flag_errors: Vec<String>,
    /// Unparseable values seen for the campaign-identity flags
    /// (`--image`/`--kind-law`). The campaign entry points treat these as
    /// fatal: a typo in `--image` must not silently run a different (and
    /// much larger) sweep than the one the user asked for.
    pub spec_flag_errors: Vec<String>,
    /// Positional arguments (e.g. the benchmark selector of `fig7_quality`).
    pub positional: Vec<String>,
}

impl RunOptions {
    /// Parses options from the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit iterator (used in tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter().peekable();
        // A flag's value is only consumed when the next token is not itself
        // a flag, so `--threads --full` complains instead of silently eating
        // `--full`.
        let next_value = |iter: &mut std::iter::Peekable<I::IntoIter>, flag: &str| match iter.peek()
        {
            Some(value) if !value.starts_with("--") => iter.next(),
            _ => {
                eprintln!("{flag} requires a value; ignoring");
                None
            }
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" | "--full-scale" => options.full_scale = true,
                "--json" | "--out" => {
                    if let Some(path) = next_value(&mut iter, arg.as_str()) {
                        options.json_path = Some(PathBuf::from(path));
                    }
                }
                "--metrics" => {
                    if let Some(path) = next_value(&mut iter, "--metrics") {
                        options.metrics_path = Some(PathBuf::from(path));
                    }
                }
                "--threads" => {
                    if let Some(count) =
                        next_value(&mut iter, "--threads").and_then(|v| v.parse().ok())
                    {
                        options.threads = Some(count);
                    }
                }
                "--samples" => {
                    if let Some(count) =
                        next_value(&mut iter, "--samples").and_then(|v| v.parse().ok())
                    {
                        options.samples = Some(count);
                    }
                }
                "--backend" => {
                    if let Some(value) = next_value(&mut iter, "--backend") {
                        match value.parse() {
                            Ok(kind) => options.backend = Some(kind),
                            Err(e) => eprintln!("{e}; ignoring --backend"),
                        }
                    }
                }
                "--shard" => {
                    if let Some(value) = next_value(&mut iter, "--shard") {
                        match value.parse() {
                            Ok(spec) => options.shard = Some(spec),
                            Err(e) => {
                                eprintln!("{e}; ignoring --shard");
                                options.shard_error = Some(e.to_string());
                            }
                        }
                    }
                }
                "--figure" => {
                    if let Some(name) = next_value(&mut iter, "--figure") {
                        options.figure = Some(name);
                    }
                }
                "--shards" | "--jobs" | "--retries" => {
                    if let Some(value) = next_value(&mut iter, arg.as_str()) {
                        match value.parse() {
                            Ok(count) => {
                                *(match arg.as_str() {
                                    "--shards" => &mut options.shards,
                                    "--jobs" => &mut options.jobs,
                                    _ => &mut options.retries,
                                }) = Some(count);
                            }
                            Err(_) => {
                                let message = format!("invalid {arg} value '{value}'");
                                eprintln!("{message}; ignoring");
                                options.driver_flag_errors.push(message);
                            }
                        }
                    }
                }
                "--dir" => {
                    if let Some(path) = next_value(&mut iter, "--dir") {
                        options.dir = Some(PathBuf::from(path));
                    }
                }
                "--image" => match next_value(&mut iter, "--image") {
                    Some(value) => match value.parse() {
                        Ok(spec) => options.image = Some(spec),
                        Err(e) => {
                            eprintln!("{e}");
                            options.spec_flag_errors.push(e.to_string());
                        }
                    },
                    // A dropped value is the same class of error as a typo:
                    // it must not fall back to a different campaign sweep.
                    None => options
                        .spec_flag_errors
                        .push("--image requires a value".to_owned()),
                },
                "--kind-law" => match next_value(&mut iter, "--kind-law") {
                    Some(value) => match value.parse() {
                        Ok(law) => options.kind_law = Some(law),
                        Err(e) => {
                            eprintln!("{e}");
                            options.spec_flag_errors.push(e.to_string());
                        }
                    },
                    None => options
                        .spec_flag_errors
                        .push("--kind-law requires a value".to_owned()),
                },
                "--kernel" => match next_value(&mut iter, "--kernel") {
                    Some(value) => match value.parse() {
                        Ok(kernel) => options.kernel = Some(kernel),
                        Err(e) => {
                            eprintln!("{e}");
                            options.spec_flag_errors.push(e.to_string());
                        }
                    },
                    None => options
                        .spec_flag_errors
                        .push("--kernel requires a value".to_owned()),
                },
                "--wide-generation" => match next_value(&mut iter, "--wide-generation") {
                    Some(value) => match value.as_str() {
                        "on" => options.wide_generation = Some(true),
                        "off" => options.wide_generation = Some(false),
                        other => {
                            let message =
                                format!("invalid --wide-generation value '{other}' (on|off)");
                            eprintln!("{message}");
                            options.tuning_flag_errors.push(message);
                        }
                    },
                    None => options
                        .tuning_flag_errors
                        .push("--wide-generation requires a value (on|off)".to_owned()),
                },
                "--auto-threshold" => match next_value(&mut iter, "--auto-threshold") {
                    Some(value) => match value.parse::<f64>() {
                        // The threshold is a fault density (faults per row):
                        // only finite positive values describe one.
                        Ok(threshold) if threshold.is_finite() && threshold > 0.0 => {
                            options.auto_threshold = Some(threshold);
                        }
                        _ => {
                            let message = format!(
                                "invalid --auto-threshold value '{value}' \
                                 (expected a finite faults-per-row density > 0)"
                            );
                            eprintln!("{message}");
                            options.tuning_flag_errors.push(message);
                        }
                    },
                    None => options
                        .tuning_flag_errors
                        .push("--auto-threshold requires a value".to_owned()),
                },
                "--t-ref-ns" => {
                    if let Some(value) =
                        next_value(&mut iter, "--t-ref-ns").and_then(|v| v.parse().ok())
                    {
                        options.t_ref_ns = Some(value);
                    }
                }
                "--temp-c" => {
                    if let Some(value) =
                        next_value(&mut iter, "--temp-c").and_then(|v| v.parse().ok())
                    {
                        options.temp_c = Some(value);
                    }
                }
                _ => options.positional.push(arg),
            }
        }
        options
    }

    /// The pipeline worker policy implied by `--threads` (defaults to one
    /// worker per CPU).
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        match self.threads {
            Some(threads) => Parallelism::threads(threads),
            None => Parallelism::Auto,
        }
    }

    /// The selected backend technology (defaults to the paper's SRAM
    /// voltage-scaling model).
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.unwrap_or(BackendKind::Sram)
    }

    /// The campaign shard implied by `--shard` (defaults to the monolithic
    /// `0/1` shard).
    #[must_use]
    pub fn shard_or_solo(&self) -> ShardSpec {
        self.shard.unwrap_or_else(ShardSpec::solo)
    }

    /// The Monte-Carlo samples per failure count: the `--samples` override
    /// when given, otherwise `default`.
    #[must_use]
    pub fn samples_or(&self, default: usize) -> usize {
        self.samples.unwrap_or(default).max(1)
    }

    /// The engine tuning implied by `--wide-generation`/`--auto-threshold`
    /// (defaults keep the engine defaults).
    #[must_use]
    pub fn tuning(&self) -> crate::figures::EngineTuning {
        crate::figures::EngineTuning {
            wide_generation: self.wide_generation,
            auto_threshold: self.auto_threshold,
        }
    }

    /// Writes `value` as pretty JSON to the configured path, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json<T: ToJson + ?Sized>(
        &self,
        value: &T,
    ) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.json_path {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, value.to_json().to_pretty_string())?;
            println!("wrote JSON series to {}", path.display());
        }
        Ok(())
    }

    /// Writes the aggregated metrics report for `metrics` to the
    /// `--metrics` path, if one was given.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_metrics(
        &self,
        metrics: &crate::metrics::ShardMetrics,
    ) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.metrics_path {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            let report = crate::metrics::metrics_report(metrics);
            std::fs::write(path, report.to_pretty_string())?;
            println!("wrote metrics report to {}", path.display());
        }
        Ok(())
    }
}

/// The operating-point axis a non-SRAM `fig2`-style law sweep walks,
/// resolved from the shared `--t-ref-ns` / `--temp-c` flags.
///
/// The DRAM-retention operating point is two-dimensional, so both axes are
/// sweepable: the default walks the refresh interval at `--temp-c` (default
/// 45 °C), while `--t-ref-ns <ns>` pins the refresh interval and walks the
/// die temperature instead. MLC NVM sweeps its level spacing at one day of
/// drift. This used to be hand-rolled per backend inside
/// `fig2_pcell_vs_vdd`; [`LawSweep::for_backend`] is the shared resolution
/// every consumer goes through.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SweepAxis {
    /// DRAM: sweep the refresh interval (ms) at a fixed die temperature.
    RefreshInterval {
        /// Die temperature (°C) the sweep is evaluated at.
        temperature_c: f64,
    },
    /// DRAM: sweep the die temperature (°C) at a pinned refresh interval.
    Temperature {
        /// The pinned refresh interval (ms).
        refresh_interval_ms: f64,
    },
    /// MLC NVM: sweep the level spacing (σ) at one day of drift.
    LevelSpacing,
}

/// A resolved backend law sweep: the axis, its knob grid and its labels —
/// everything a `fig2`-style binary needs to print and evaluate the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LawSweep {
    /// Which operating-point axis is swept.
    pub axis: SweepAxis,
    /// Knob values, ordered from conservative to aggressive.
    pub knobs: Vec<f64>,
    /// Unit tag recorded in the JSON series (`"ms"`, `"C"`, `"sigma"`).
    pub knob_unit: &'static str,
    /// Table column header for the knob.
    pub knob_header: &'static str,
    /// Human-readable sweep title.
    pub title: String,
}

impl LawSweep {
    /// Resolves the sweep for a non-SRAM backend from the shared
    /// operating-point flags. Returns `None` for
    /// [`BackendKind::Sram`] — the SRAM analogue is the paper's own
    /// `V_DD` sweep, which has its own grid.
    #[must_use]
    pub fn for_backend(kind: BackendKind, options: &RunOptions) -> Option<Self> {
        match kind {
            BackendKind::Sram => None,
            BackendKind::Dram => Some(match options.t_ref_ns {
                // 1 ms = 1e6 ns; the CLI takes nanoseconds, the backend
                // milliseconds.
                Some(t_ref_ns) => {
                    let refresh_interval_ms = t_ref_ns / 1e6;
                    Self {
                        axis: SweepAxis::Temperature {
                            refresh_interval_ms,
                        },
                        knobs: (0..9).map(|i| 25.0 + 10.0 * f64::from(i)).collect(),
                        knob_unit: "C",
                        knob_header: "T (C)",
                        title: format!(
                            "Fig. 2 (DRAM analogue) — P_cell vs temperature \
                             (t_ref = {refresh_interval_ms} ms, 16KB memory)"
                        ),
                    }
                }
                None => {
                    let temperature_c = options.temp_c.unwrap_or(45.0);
                    Self {
                        axis: SweepAxis::RefreshInterval { temperature_c },
                        knobs: vec![4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
                        knob_unit: "ms",
                        knob_header: "t_ref (ms)",
                        title: format!(
                            "Fig. 2 (DRAM analogue) — P_cell vs refresh interval \
                             ({temperature_c:.0}C, 16KB memory)"
                        ),
                    }
                }
            }),
            BackendKind::Mlc => Some(Self {
                axis: SweepAxis::LevelSpacing,
                knobs: (0..10).map(|i| 16.0 - f64::from(i)).collect(),
                knob_unit: "sigma",
                knob_header: "spacing (sigma)",
                title: "Fig. 2 (MLC analogue) — P_cell vs level spacing \
                        (1-day drift, 16KB memory)"
                    .to_owned(),
            }),
        }
    }

    /// The marginal per-cell failure probability of the swept backend at
    /// one knob value on the given geometry.
    ///
    /// # Errors
    ///
    /// Propagates backend-construction errors (an out-of-domain knob).
    pub fn p_cell(&self, memory: MemoryConfig, knob: f64) -> Result<f64, MemError> {
        Ok(match self.axis {
            SweepAxis::RefreshInterval { temperature_c } => {
                DramRetentionBackend::new(memory, knob, temperature_c)?.p_cell()
            }
            SweepAxis::Temperature {
                refresh_interval_ms,
            } => DramRetentionBackend::new(memory, refresh_interval_ms, knob)?.p_cell(),
            SweepAxis::LevelSpacing => MlcNvmBackend::new(memory, knob, 86_400.0)?.p_cell(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn parse_recognises_flags_and_positionals() {
        let opts = RunOptions::parse(
            [
                "--full",
                "elasticnet",
                "--json",
                "out/series.json",
                "--threads",
                "4",
                "--samples",
                "25",
                "--backend",
                "dram",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        assert!(opts.full_scale);
        assert_eq!(opts.positional, vec!["elasticnet".to_owned()]);
        assert_eq!(opts.json_path, Some(PathBuf::from("out/series.json")));
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.samples, Some(25));
        assert_eq!(opts.samples_or(100), 25);
        assert_eq!(opts.backend, Some(BackendKind::Dram));
        assert_eq!(opts.backend_kind(), BackendKind::Dram);
        assert_eq!(opts.parallelism(), Parallelism::threads(4));
    }

    #[test]
    fn parse_defaults_are_empty() {
        let opts = RunOptions::parse(std::iter::empty());
        assert!(!opts.full_scale);
        assert!(opts.json_path.is_none());
        assert!(opts.threads.is_none());
        assert!(opts.samples.is_none());
        assert!(opts.backend.is_none());
        assert!(opts.positional.is_empty());
        assert_eq!(opts.parallelism(), Parallelism::Auto);
        assert_eq!(opts.backend_kind(), BackendKind::Sram);
        assert_eq!(opts.samples_or(60), 60);
    }

    #[test]
    fn parse_recognises_shard_and_operating_point_flags() {
        let opts = RunOptions::parse(
            ["--shard", "1/4", "--t-ref-ns", "6.4e7", "--temp-c", "-10.5"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(opts.shard, Some(ShardSpec::new(1, 4).unwrap()));
        assert_eq!(opts.shard_or_solo(), ShardSpec::new(1, 4).unwrap());
        assert_eq!(opts.t_ref_ns, Some(6.4e7));
        assert_eq!(opts.temp_c, Some(-10.5));
        assert!(opts.positional.is_empty());

        let opts = RunOptions::parse(std::iter::empty());
        assert!(opts.shard.is_none());
        assert!(opts.shard_or_solo().is_solo());
        assert!(opts.t_ref_ns.is_none());
        assert!(opts.temp_c.is_none());

        // An invalid shard spec is consumed and ignored, but recorded so
        // shard-critical binaries can refuse to run.
        let opts = RunOptions::parse(["--shard".to_owned(), "5/2".to_owned()]);
        assert!(opts.shard.is_none());
        assert!(opts.shard_error.is_some());
        assert!(opts.positional.is_empty());
        let opts = RunOptions::parse(["--shard".to_owned(), "1/4".to_owned()]);
        assert!(opts.shard_error.is_none());
    }

    #[test]
    fn parse_recognises_driver_flags() {
        let opts = RunOptions::parse(
            [
                "--figure",
                "fig5",
                "--shards",
                "4",
                "--jobs",
                "2",
                "--retries",
                "3",
                "--dir",
                "shards/run",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        assert_eq!(opts.figure.as_deref(), Some("fig5"));
        assert_eq!(opts.shards, Some(4));
        assert_eq!(opts.jobs, Some(2));
        assert_eq!(opts.retries, Some(3));
        assert_eq!(opts.dir, Some(PathBuf::from("shards/run")));
        assert!(opts.positional.is_empty());

        let opts = RunOptions::parse(std::iter::empty());
        assert!(opts.figure.is_none());
        assert!(opts.shards.is_none());
        assert!(opts.jobs.is_none());
        assert!(opts.retries.is_none());
        assert!(opts.dir.is_none());
    }

    #[test]
    fn law_sweep_resolves_each_backend_axis() {
        let memory = MemoryConfig::paper_16kb();
        assert!(LawSweep::for_backend(BackendKind::Sram, &RunOptions::default()).is_none());

        // DRAM default: refresh-interval sweep at 45 °C.
        let sweep = LawSweep::for_backend(BackendKind::Dram, &RunOptions::default()).unwrap();
        assert_eq!(
            sweep.axis,
            SweepAxis::RefreshInterval {
                temperature_c: 45.0
            }
        );
        assert_eq!(sweep.knob_unit, "ms");
        assert_eq!(sweep.knobs.len(), 8);
        // P_cell grows with the refresh interval.
        let p: Vec<f64> = sweep
            .knobs
            .iter()
            .map(|&knob| sweep.p_cell(memory, knob).unwrap())
            .collect();
        assert!(p.windows(2).all(|w| w[0] < w[1]));

        // --temp-c re-temperatures the refresh sweep.
        let opts = RunOptions::parse(["--temp-c".to_owned(), "85".to_owned()]);
        let hot = LawSweep::for_backend(BackendKind::Dram, &opts).unwrap();
        assert_eq!(
            hot.axis,
            SweepAxis::RefreshInterval {
                temperature_c: 85.0
            }
        );
        assert!(hot.p_cell(memory, 64.0).unwrap() > sweep.p_cell(memory, 64.0).unwrap());

        // --t-ref-ns switches to the temperature axis.
        let opts = RunOptions::parse(["--t-ref-ns".to_owned(), "6.4e7".to_owned()]);
        let sweep = LawSweep::for_backend(BackendKind::Dram, &opts).unwrap();
        assert_eq!(
            sweep.axis,
            SweepAxis::Temperature {
                refresh_interval_ms: 64.0
            }
        );
        assert_eq!(sweep.knob_unit, "C");
        let p: Vec<f64> = sweep
            .knobs
            .iter()
            .map(|&knob| sweep.p_cell(memory, knob).unwrap())
            .collect();
        assert!(p.windows(2).all(|w| w[0] < w[1]));

        // MLC: level-spacing sweep, falling spacing raises P_cell.
        let sweep = LawSweep::for_backend(BackendKind::Mlc, &RunOptions::default()).unwrap();
        assert_eq!(sweep.axis, SweepAxis::LevelSpacing);
        assert_eq!(sweep.knob_unit, "sigma");
        let p: Vec<f64> = sweep
            .knobs
            .iter()
            .map(|&knob| sweep.p_cell(memory, knob).unwrap())
            .collect();
        assert!(p.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn parse_recognises_image_and_kind_law_flags() {
        let opts = RunOptions::parse(
            ["--image", "random:7", "--kind-law", "stuck-at:0.9"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(opts.image, Some(ImageSpec::UniformRandom { seed: 7 }));
        assert_eq!(
            opts.kind_law,
            Some(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.9
            })
        );
        assert!(opts.positional.is_empty());

        let opts = RunOptions::parse(std::iter::empty());
        assert!(opts.image.is_none());
        assert!(opts.kind_law.is_none());
        assert!(opts.spec_flag_errors.is_empty());

        // Unparseable values are consumed and recorded as fatal errors: a
        // typo must not silently select a different campaign.
        let opts = RunOptions::parse(
            ["--image", "noise", "--kind-law", "decay"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.image.is_none());
        assert!(opts.kind_law.is_none());
        assert!(opts.positional.is_empty());
        assert_eq!(opts.spec_flag_errors.len(), 2);
        assert!(opts.spec_flag_errors[0].contains("noise"));
        assert!(opts.spec_flag_errors[1].contains("decay"));

        // A dropped value (next token is a flag) is fatal too, not a
        // silent fall-back to the default sweep.
        let opts = RunOptions::parse(
            ["--image", "--kind-law", "stuck-at:0.9"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.image.is_none());
        assert_eq!(
            opts.kind_law,
            Some(FaultKindLaw::AsymmetricStuckAt {
                p_stuck_at_zero: 0.9
            })
        );
        assert_eq!(opts.spec_flag_errors, vec!["--image requires a value"]);
    }

    #[test]
    fn parse_recognises_the_kernel_flag() {
        let opts = RunOptions::parse(["--kernel", "bitsliced"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.kernel, Some(KernelKind::Bitsliced));
        assert!(opts.spec_flag_errors.is_empty());

        let opts = RunOptions::parse(["--kernel", "bitsliced256"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.kernel, Some(KernelKind::Bitsliced256));
        assert!(opts.spec_flag_errors.is_empty());

        let opts = RunOptions::parse(["--kernel", "auto"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.kernel, Some(KernelKind::Auto));
        assert!(opts.spec_flag_errors.is_empty());

        let opts = RunOptions::parse(std::iter::empty());
        assert!(opts.kernel.is_none());

        // A typo must be fatal for the campaign entry points, not a silent
        // fall-back to the default kernel's telemetry label.
        let opts = RunOptions::parse(["--kernel", "vectorised"].iter().map(|s| (*s).to_owned()));
        assert!(opts.kernel.is_none());
        assert_eq!(opts.spec_flag_errors.len(), 1);
        assert!(opts.spec_flag_errors[0].contains("vectorised"));

        // A dropped value is recorded too.
        let opts = RunOptions::parse(["--kernel", "--full"].iter().map(|s| (*s).to_owned()));
        assert!(opts.kernel.is_none());
        assert_eq!(opts.spec_flag_errors, vec!["--kernel requires a value"]);
    }

    #[test]
    fn parse_recognises_the_tuning_flags() {
        let opts = RunOptions::parse(
            ["--wide-generation", "off", "--auto-threshold", "0.25"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(opts.wide_generation, Some(false));
        assert_eq!(opts.auto_threshold, Some(0.25));
        assert!(opts.tuning_flag_errors.is_empty());
        assert_eq!(opts.tuning().wide_generation, Some(false));
        assert_eq!(opts.tuning().auto_threshold, Some(0.25));

        let opts = RunOptions::parse(["--wide-generation", "on"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.wide_generation, Some(true));

        let opts = RunOptions::parse(std::iter::empty());
        assert!(opts.wide_generation.is_none());
        assert!(opts.auto_threshold.is_none());
        assert_eq!(opts.tuning(), crate::figures::EngineTuning::default());

        // Typos and out-of-domain thresholds are consumed and recorded as
        // fatal: a bad tuning flag must not silently run (and record
        // telemetry for) a different tuning than the one asked for.
        let opts = RunOptions::parse(
            ["--wide-generation", "wide", "--auto-threshold", "-1"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.wide_generation.is_none());
        assert!(opts.auto_threshold.is_none());
        assert_eq!(opts.tuning_flag_errors.len(), 2);
        assert!(opts.tuning_flag_errors[0].contains("wide"));
        assert!(opts.tuning_flag_errors[1].contains("-1"));
        for bad in ["nan", "inf", "0"] {
            let opts = RunOptions::parse(["--auto-threshold".to_owned(), bad.to_owned()]);
            assert!(opts.auto_threshold.is_none(), "{bad} must be rejected");
            assert_eq!(opts.tuning_flag_errors.len(), 1, "{bad}");
        }

        // A dropped value is recorded too.
        let opts = RunOptions::parse(
            ["--auto-threshold", "--full"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.auto_threshold.is_none());
        assert!(opts.full_scale);
        assert_eq!(
            opts.tuning_flag_errors,
            vec!["--auto-threshold requires a value"]
        );
    }

    #[test]
    fn out_is_an_alias_for_json() {
        let opts = RunOptions::parse(["--out", "results/x.json"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.json_path, Some(PathBuf::from("results/x.json")));
    }

    #[test]
    fn metrics_flag_records_the_report_path() {
        let opts = RunOptions::parse(["--metrics", "m.json"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.metrics_path, Some(PathBuf::from("m.json")));
        // The flag is independent of --json/--out and optional.
        let opts = RunOptions::parse(["--out", "x.json"].iter().map(|s| (*s).to_owned()));
        assert!(opts.metrics_path.is_none());
        // A dangling --metrics is ignored like a dangling --json.
        let opts = RunOptions::parse(["--metrics".to_owned()]);
        assert!(opts.metrics_path.is_none());
    }

    #[test]
    fn missing_or_invalid_values_are_ignored() {
        let opts = RunOptions::parse(["--json".to_owned()]);
        assert!(opts.json_path.is_none());
        // A non-numeric --threads value is consumed and ignored.
        let opts = RunOptions::parse(["--threads".to_owned(), "abc".to_owned()]);
        assert!(opts.threads.is_none());
        assert!(opts.positional.is_empty());
        // An unknown backend is consumed, reported and ignored.
        let opts = RunOptions::parse(["--backend".to_owned(), "flash".to_owned()]);
        assert!(opts.backend.is_none());
        assert!(opts.positional.is_empty());
    }

    #[test]
    fn driver_flag_typos_are_recorded_as_errors() {
        // A typo in --shards must not silently degrade a K-way campaign to
        // a monolithic run: the driver treats these as fatal.
        let opts = RunOptions::parse(["--shards".to_owned(), "1O".to_owned()]);
        assert!(opts.shards.is_none());
        assert_eq!(opts.driver_flag_errors.len(), 1);
        assert!(opts.driver_flag_errors[0].contains("--shards"));
        assert!(opts.driver_flag_errors[0].contains("1O"));

        let opts = RunOptions::parse(
            ["--jobs", "x", "--retries", "-1"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.jobs.is_none());
        assert!(opts.retries.is_none());
        assert_eq!(opts.driver_flag_errors.len(), 2);

        let opts = RunOptions::parse(
            ["--shards", "4", "--jobs", "2", "--retries", "0"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert!(opts.driver_flag_errors.is_empty());
    }

    #[test]
    fn write_json_without_path_is_a_no_op() {
        let opts = RunOptions::default();
        opts.write_json(&vec![1.0, 2.0, 3.0]).unwrap();
    }

    #[test]
    fn write_json_creates_parent_directories() {
        let dir = std::env::temp_dir().join("faultmit-bench-test");
        let path = dir.join("nested").join("series.json");
        let opts = RunOptions {
            json_path: Some(path.clone()),
            ..RunOptions::default()
        };
        opts.write_json(&JsonValue::object([("ok", true.to_json())]))
            .unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"ok\": true"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
