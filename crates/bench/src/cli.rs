//! The one command-line parser shared by every figure/ablation binary.
//!
//! Historically each binary hand-rolled its flag handling; this module
//! centralises it so a flag added here (like the `--backend` technology
//! axis) is picked up by all of them at once. Recognised flags:
//!
//! * `--full` / `--full-scale` — run at the paper's full Monte-Carlo scale;
//! * `--json <path>` (alias `--out <path>`) — write the machine-readable
//!   series;
//! * `--threads <n>` — pin the pipeline worker count (`1` = serial);
//! * `--samples <n>` — override the number of fault maps per failure count;
//! * `--backend <sram|dram|mlc>` — select the fault-generation technology
//!   ([`faultmit_memsim::backend`]); the default is the paper's SRAM model;
//! * `--shard <I/K>` — evaluate only shard `I` of a `K`-way campaign split
//!   (the `campaign_shard` axis; see [`faultmit_sim::ShardSpec`]);
//! * `--t-ref-ns <ns>` / `--temp-c <C>` — DRAM-retention operating-point
//!   sweep controls: pin the refresh interval (switching `fig2`'s DRAM
//!   analogue to a temperature sweep) or set the sweep temperature.
//!
//! Anything else is collected as a positional argument (e.g. the benchmark
//! selector of `fig7_quality`).

use crate::json::ToJson;
use faultmit_memsim::{Backend, BackendKind, MemError, MemoryConfig};
use faultmit_sim::{Parallelism, ShardSpec};
use std::path::PathBuf;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunOptions {
    /// Run at the paper's full scale (slower); the default is a reduced but
    /// shape-preserving configuration.
    pub full_scale: bool,
    /// Optional path to write the JSON series to (`--json` / `--out`).
    pub json_path: Option<PathBuf>,
    /// Optional worker-thread count for the simulation pipeline
    /// (`None` = one worker per CPU).
    pub threads: Option<usize>,
    /// Optional override of the Monte-Carlo samples per failure count.
    pub samples: Option<usize>,
    /// Fault-generation technology selected with `--backend`
    /// (`None` = the paper's SRAM model).
    pub backend: Option<BackendKind>,
    /// Campaign shard selected with `--shard I/K`
    /// (`None` = run the whole campaign, i.e. the `0/1` shard).
    pub shard: Option<ShardSpec>,
    /// Set when a `--shard` value was present but unparseable. Binaries for
    /// which the shard slice is load-bearing (`campaign_shard`) must treat
    /// this as fatal rather than fall back to the monolithic shard and
    /// silently recompute the whole campaign.
    pub shard_error: Option<String>,
    /// Fixed DRAM refresh interval in nanoseconds (`--t-ref-ns`); when set,
    /// the `fig2` DRAM analogue sweeps the temperature axis at this refresh
    /// interval instead of sweeping the refresh interval itself.
    pub t_ref_ns: Option<f64>,
    /// DRAM die temperature in °C (`--temp-c`) used by the refresh-interval
    /// sweep (`None` = the 45 °C reference).
    pub temp_c: Option<f64>,
    /// Positional arguments (e.g. the benchmark selector of `fig7_quality`).
    pub positional: Vec<String>,
}

impl RunOptions {
    /// Parses options from the process arguments (skipping the binary name).
    #[must_use]
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit iterator (used in tests).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = Self::default();
        let mut iter = args.into_iter().peekable();
        // A flag's value is only consumed when the next token is not itself
        // a flag, so `--threads --full` complains instead of silently eating
        // `--full`.
        let next_value = |iter: &mut std::iter::Peekable<I::IntoIter>, flag: &str| match iter.peek()
        {
            Some(value) if !value.starts_with("--") => iter.next(),
            _ => {
                eprintln!("{flag} requires a value; ignoring");
                None
            }
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--full" | "--full-scale" => options.full_scale = true,
                "--json" | "--out" => {
                    if let Some(path) = next_value(&mut iter, arg.as_str()) {
                        options.json_path = Some(PathBuf::from(path));
                    }
                }
                "--threads" => {
                    if let Some(count) =
                        next_value(&mut iter, "--threads").and_then(|v| v.parse().ok())
                    {
                        options.threads = Some(count);
                    }
                }
                "--samples" => {
                    if let Some(count) =
                        next_value(&mut iter, "--samples").and_then(|v| v.parse().ok())
                    {
                        options.samples = Some(count);
                    }
                }
                "--backend" => {
                    if let Some(value) = next_value(&mut iter, "--backend") {
                        match value.parse() {
                            Ok(kind) => options.backend = Some(kind),
                            Err(e) => eprintln!("{e}; ignoring --backend"),
                        }
                    }
                }
                "--shard" => {
                    if let Some(value) = next_value(&mut iter, "--shard") {
                        match value.parse() {
                            Ok(spec) => options.shard = Some(spec),
                            Err(e) => {
                                eprintln!("{e}; ignoring --shard");
                                options.shard_error = Some(e.to_string());
                            }
                        }
                    }
                }
                "--t-ref-ns" => {
                    if let Some(value) =
                        next_value(&mut iter, "--t-ref-ns").and_then(|v| v.parse().ok())
                    {
                        options.t_ref_ns = Some(value);
                    }
                }
                "--temp-c" => {
                    if let Some(value) =
                        next_value(&mut iter, "--temp-c").and_then(|v| v.parse().ok())
                    {
                        options.temp_c = Some(value);
                    }
                }
                _ => options.positional.push(arg),
            }
        }
        options
    }

    /// The pipeline worker policy implied by `--threads` (defaults to one
    /// worker per CPU).
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        match self.threads {
            Some(threads) => Parallelism::threads(threads),
            None => Parallelism::Auto,
        }
    }

    /// The selected backend technology (defaults to the paper's SRAM
    /// voltage-scaling model).
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.unwrap_or(BackendKind::Sram)
    }

    /// The campaign shard implied by `--shard` (defaults to the monolithic
    /// `0/1` shard).
    #[must_use]
    pub fn shard_or_solo(&self) -> ShardSpec {
        self.shard.unwrap_or_else(ShardSpec::solo)
    }

    /// Builds the selected backend with its operating point calibrated to
    /// the marginal per-cell fault probability `p_cell` on the given
    /// geometry — so switching `--backend` keeps the fault density matched
    /// and only changes the technology's fault structure.
    ///
    /// # Errors
    ///
    /// Propagates calibration errors (a `p_cell` the technology's law
    /// cannot reach).
    pub fn backend_at_p_cell(
        &self,
        memory: MemoryConfig,
        p_cell: f64,
    ) -> Result<Backend, MemError> {
        Backend::at_p_cell(self.backend_kind(), memory, p_cell)
    }

    /// The Monte-Carlo samples per failure count: the `--samples` override
    /// when given, otherwise `default`.
    #[must_use]
    pub fn samples_or(&self, default: usize) -> usize {
        self.samples.unwrap_or(default).max(1)
    }

    /// Writes `value` as pretty JSON to the configured path, if any.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_json<T: ToJson + ?Sized>(
        &self,
        value: &T,
    ) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(path) = &self.json_path {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(path, value.to_json().to_pretty_string())?;
            println!("wrote JSON series to {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn parse_recognises_flags_and_positionals() {
        let opts = RunOptions::parse(
            [
                "--full",
                "elasticnet",
                "--json",
                "out/series.json",
                "--threads",
                "4",
                "--samples",
                "25",
                "--backend",
                "dram",
            ]
            .iter()
            .map(|s| (*s).to_owned()),
        );
        assert!(opts.full_scale);
        assert_eq!(opts.positional, vec!["elasticnet".to_owned()]);
        assert_eq!(opts.json_path, Some(PathBuf::from("out/series.json")));
        assert_eq!(opts.threads, Some(4));
        assert_eq!(opts.samples, Some(25));
        assert_eq!(opts.samples_or(100), 25);
        assert_eq!(opts.backend, Some(BackendKind::Dram));
        assert_eq!(opts.backend_kind(), BackendKind::Dram);
        assert_eq!(opts.parallelism(), Parallelism::threads(4));
    }

    #[test]
    fn parse_defaults_are_empty() {
        let opts = RunOptions::parse(std::iter::empty());
        assert!(!opts.full_scale);
        assert!(opts.json_path.is_none());
        assert!(opts.threads.is_none());
        assert!(opts.samples.is_none());
        assert!(opts.backend.is_none());
        assert!(opts.positional.is_empty());
        assert_eq!(opts.parallelism(), Parallelism::Auto);
        assert_eq!(opts.backend_kind(), BackendKind::Sram);
        assert_eq!(opts.samples_or(60), 60);
    }

    #[test]
    fn parse_recognises_shard_and_operating_point_flags() {
        let opts = RunOptions::parse(
            ["--shard", "1/4", "--t-ref-ns", "6.4e7", "--temp-c", "-10.5"]
                .iter()
                .map(|s| (*s).to_owned()),
        );
        assert_eq!(opts.shard, Some(ShardSpec::new(1, 4).unwrap()));
        assert_eq!(opts.shard_or_solo(), ShardSpec::new(1, 4).unwrap());
        assert_eq!(opts.t_ref_ns, Some(6.4e7));
        assert_eq!(opts.temp_c, Some(-10.5));
        assert!(opts.positional.is_empty());

        let opts = RunOptions::parse(std::iter::empty());
        assert!(opts.shard.is_none());
        assert!(opts.shard_or_solo().is_solo());
        assert!(opts.t_ref_ns.is_none());
        assert!(opts.temp_c.is_none());

        // An invalid shard spec is consumed and ignored, but recorded so
        // shard-critical binaries can refuse to run.
        let opts = RunOptions::parse(["--shard".to_owned(), "5/2".to_owned()]);
        assert!(opts.shard.is_none());
        assert!(opts.shard_error.is_some());
        assert!(opts.positional.is_empty());
        let opts = RunOptions::parse(["--shard".to_owned(), "1/4".to_owned()]);
        assert!(opts.shard_error.is_none());
    }

    #[test]
    fn out_is_an_alias_for_json() {
        let opts = RunOptions::parse(["--out", "results/x.json"].iter().map(|s| (*s).to_owned()));
        assert_eq!(opts.json_path, Some(PathBuf::from("results/x.json")));
    }

    #[test]
    fn missing_or_invalid_values_are_ignored() {
        let opts = RunOptions::parse(["--json".to_owned()]);
        assert!(opts.json_path.is_none());
        // A non-numeric --threads value is consumed and ignored.
        let opts = RunOptions::parse(["--threads".to_owned(), "abc".to_owned()]);
        assert!(opts.threads.is_none());
        assert!(opts.positional.is_empty());
        // An unknown backend is consumed, reported and ignored.
        let opts = RunOptions::parse(["--backend".to_owned(), "flash".to_owned()]);
        assert!(opts.backend.is_none());
        assert!(opts.positional.is_empty());
    }

    #[test]
    fn backend_at_p_cell_builds_density_matched_backends() {
        use faultmit_memsim::FaultBackend;
        let memory = MemoryConfig::new(64, 32).unwrap();
        for name in ["sram", "dram", "mlc"] {
            let opts = RunOptions::parse(["--backend".to_owned(), name.to_owned()]);
            let backend = opts.backend_at_p_cell(memory, 1e-4).unwrap();
            assert_eq!(backend.kind(), opts.backend_kind());
            assert!(
                (backend.p_cell().log10() + 4.0).abs() < 0.05,
                "{name}: p_cell = {}",
                backend.p_cell()
            );
        }
    }

    #[test]
    fn write_json_without_path_is_a_no_op() {
        let opts = RunOptions::default();
        opts.write_json(&vec![1.0, 2.0, 3.0]).unwrap();
    }

    #[test]
    fn write_json_creates_parent_directories() {
        let dir = std::env::temp_dir().join("faultmit-bench-test");
        let path = dir.join("nested").join("series.json");
        let opts = RunOptions {
            json_path: Some(path.clone()),
            ..RunOptions::default()
        };
        opts.write_json(&JsonValue::object([("ok", true.to_json())]))
            .unwrap();
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("\"ok\": true"));
        let _ = std::fs::remove_dir_all(dir);
    }
}
