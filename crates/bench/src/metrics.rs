//! JSON serialisation and cross-shard aggregation for the observability
//! layer ([`faultmit_obs`]).
//!
//! The obs crate is dependency-free by design, so everything that touches
//! JSON lives here: [`snapshot_to_json`]/[`snapshot_from_json`] round-trip a
//! [`MetricsSnapshot`] exactly (counters, histogram buckets and stage clocks
//! are stored as integers), [`ShardMetrics`] is the one telemetry section a
//! shard checkpoint carries (wall/generation clocks, kernel identity, the
//! `--auto-threshold` override and the snapshot — the fields that used to be
//! four ad-hoc top-level checkpoint entries), and [`metrics_report`] renders
//! the aggregated `--metrics` output document with its derived rates.
//!
//! # Determinism
//!
//! Counter totals are sums of per-chunk contributions, so for a fixed
//! campaign the deterministic counters (see
//! [`faultmit_obs::Counter::is_deterministic`]) aggregate to **bit-identical
//! values at any worker count and any shard split**: merging K shard
//! snapshots reproduces the monolithic run's counters exactly. Stage clocks
//! and realloc events are host telemetry and are excluded from that
//! contract.

use crate::json::{JsonValue, ToJson};
use faultmit_obs::{Counter, Histogram, MetricsSnapshot, Stage, HISTOGRAM_BUCKETS};

/// Format tag of `--metrics` output documents.
pub const METRICS_REPORT_FORMAT: &str = "faultmit-metrics/v1";

/// Serialises a [`MetricsSnapshot`] with every counter, histogram bucket
/// and stage clock as an exact integer, keyed by the obs crate's stable
/// snake_case names. All slots are emitted (zeros included) so the schema
/// is the same for every producer.
#[must_use]
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> JsonValue {
    let counters = JsonValue::Object(
        Counter::ALL
            .iter()
            .map(|&counter| {
                (
                    counter.name().to_owned(),
                    snapshot.counter(counter).to_json(),
                )
            })
            .collect(),
    );
    let histograms = JsonValue::Object(
        Histogram::ALL
            .iter()
            .map(|&histogram| {
                (
                    histogram.name().to_owned(),
                    JsonValue::Array(
                        snapshot
                            .histogram(histogram)
                            .iter()
                            .map(|&bucket| bucket.to_json())
                            .collect(),
                    ),
                )
            })
            .collect(),
    );
    let stages = JsonValue::Object(
        Stage::ALL
            .iter()
            .map(|&stage| {
                (
                    stage.name().to_owned(),
                    JsonValue::object([
                        ("nanos", snapshot.stage_nanos[stage as usize].to_json()),
                        ("calls", snapshot.stage_calls(stage).to_json()),
                    ]),
                )
            })
            .collect(),
    );
    JsonValue::object([
        ("counters", counters),
        ("histograms", histograms),
        ("stages", stages),
    ])
}

/// Rebuilds a [`MetricsSnapshot`] from its serialised form. Unknown keys
/// are ignored and missing keys read as zero, so snapshots written by
/// builds with fewer (or more) counters still load.
///
/// # Errors
///
/// Returns a description of the first structurally malformed entry.
pub fn snapshot_from_json(value: &JsonValue) -> Result<MetricsSnapshot, String> {
    let mut snapshot = MetricsSnapshot::default();
    if let Some(counters) = value.get("counters") {
        for &counter in &Counter::ALL {
            if let Some(node) = counters.get(counter.name()) {
                snapshot.counters[counter as usize] = node
                    .as_u64()
                    .ok_or_else(|| format!("counter '{}' must be an integer", counter.name()))?;
            }
        }
    }
    if let Some(histograms) = value.get("histograms") {
        for &histogram in &Histogram::ALL {
            let Some(node) = histograms.get(histogram.name()) else {
                continue;
            };
            let buckets = node
                .as_array()
                .filter(|buckets| buckets.len() == HISTOGRAM_BUCKETS)
                .ok_or_else(|| {
                    format!(
                        "histogram '{}' must be an array of {HISTOGRAM_BUCKETS} buckets",
                        histogram.name()
                    )
                })?;
            for (slot, bucket) in snapshot.histograms[histogram as usize]
                .iter_mut()
                .zip(buckets)
            {
                *slot = bucket.as_u64().ok_or_else(|| {
                    format!("histogram '{}' buckets must be integers", histogram.name())
                })?;
            }
        }
    }
    if let Some(stages) = value.get("stages") {
        for &stage in &Stage::ALL {
            let Some(node) = stages.get(stage.name()) else {
                continue;
            };
            snapshot.stage_nanos[stage as usize] = node
                .get("nanos")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stage '{}' is missing integer 'nanos'", stage.name()))?;
            snapshot.stage_calls[stage as usize] = node
                .get("calls")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stage '{}' is missing integer 'calls'", stage.name()))?;
        }
    }
    Ok(snapshot)
}

/// A checkpoint's complete telemetry — the shard-state `metrics` section.
///
/// Before the v3 shard format these lived as four ad-hoc top-level
/// checkpoint fields (`elapsed_seconds`, `kernel`, `generation_seconds`,
/// `auto_threshold`); they are now one section with one accessor path, and
/// the v2 loader folds the legacy fields into it so old checkpoints keep
/// loading. Everything here is **identity-free** telemetry: it never feeds
/// back into panel states, so figure JSON is byte-identical whether or not
/// metrics were recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardMetrics {
    /// Wall-clock seconds the producing process spent evaluating the shard
    /// (aggregated checkpoints sum across shards, so the total is CPU-side
    /// "shard seconds", not the driver's wall clock).
    pub elapsed_seconds: Option<f64>,
    /// CPU seconds spent generating fault maps, summed across worker
    /// threads (can exceed `elapsed_seconds` at worker counts above one).
    pub generation_seconds: Option<f64>,
    /// Name of the evaluation kernel that produced the state (`"sparse"`,
    /// `"auto:bitsliced256"`, …). Must agree across a shard set — see
    /// [`crate::shard::ShardState::merge`].
    pub kernel: Option<String>,
    /// The `--auto-threshold` density override the run resolved its `auto`
    /// kernel with; must also agree across a shard set.
    pub auto_threshold: Option<f64>,
    /// The observability snapshot the run recorded, when a recorder was
    /// installed (see [`faultmit_obs::install`]); `None` for runs without
    /// instrumentation and for legacy checkpoints.
    pub snapshot: Option<MetricsSnapshot>,
}

impl ShardMetrics {
    /// `true` when nothing was recorded (serialises as `null`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.elapsed_seconds.is_none()
            && self.generation_seconds.is_none()
            && self.kernel.is_none()
            && self.auto_threshold.is_none()
            && self.snapshot.is_none()
    }

    /// Serialises the section (`null` when empty, so checkpoints without
    /// telemetry stay small).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        if self.is_empty() {
            return JsonValue::Null;
        }
        JsonValue::object([
            (
                "elapsed_seconds",
                match self.elapsed_seconds {
                    None => JsonValue::Null,
                    Some(seconds) => JsonValue::Number(seconds),
                },
            ),
            (
                "generation_seconds",
                match self.generation_seconds {
                    None => JsonValue::Null,
                    Some(seconds) => JsonValue::Number(seconds),
                },
            ),
            (
                "kernel",
                match &self.kernel {
                    None => JsonValue::Null,
                    Some(kernel) => kernel.to_json(),
                },
            ),
            (
                "auto_threshold",
                match self.auto_threshold {
                    None => JsonValue::Null,
                    Some(threshold) => JsonValue::Number(threshold),
                },
            ),
            (
                "snapshot",
                match &self.snapshot {
                    None => JsonValue::Null,
                    Some(snapshot) => snapshot_to_json(snapshot),
                },
            ),
        ])
    }

    /// Reads the section back (absent or `null` → empty).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        if matches!(value, JsonValue::Null) {
            return Ok(Self::default());
        }
        let snapshot = match value.get("snapshot") {
            None | Some(JsonValue::Null) => None,
            Some(node) => Some(snapshot_from_json(node)?),
        };
        Ok(Self {
            elapsed_seconds: value.get("elapsed_seconds").and_then(JsonValue::as_f64),
            generation_seconds: value.get("generation_seconds").and_then(JsonValue::as_f64),
            kernel: value
                .get("kernel")
                .and_then(JsonValue::as_str)
                .map(str::to_owned),
            auto_threshold: value.get("auto_threshold").and_then(JsonValue::as_f64),
            snapshot,
        })
    }

    /// Folds another shard's telemetry into this one (cross-shard
    /// aggregation): clocks and snapshots **sum**, the kernel/threshold
    /// identity is kept from whichever shard recorded it (callers validate
    /// agreement first — see [`crate::shard::ShardState::merge`]).
    pub fn absorb(&mut self, other: &ShardMetrics) {
        self.elapsed_seconds = sum_opt(self.elapsed_seconds, other.elapsed_seconds);
        self.generation_seconds = sum_opt(self.generation_seconds, other.generation_seconds);
        if self.kernel.is_none() {
            self.kernel.clone_from(&other.kernel);
        }
        if self.auto_threshold.is_none() {
            self.auto_threshold = other.auto_threshold;
        }
        match (&mut self.snapshot, &other.snapshot) {
            (Some(into), Some(from)) => into.merge(from),
            (None, Some(from)) => self.snapshot = Some(*from),
            _ => {}
        }
    }
}

fn sum_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (None, None) => None,
        (a, b) => Some(a.unwrap_or(0.0) + b.unwrap_or(0.0)),
    }
}

/// Renders the `--metrics` output document: the aggregated telemetry plus
/// the derived rates operators actually read (wide-generation lane
/// utilisation, `observe_block` fallback rate, per-stage time split).
#[must_use]
pub fn metrics_report(metrics: &ShardMetrics) -> JsonValue {
    let snapshot = metrics.snapshot.unwrap_or_default();
    let stage_split = JsonValue::Object(
        Stage::ALL
            .iter()
            .map(|&stage| {
                (
                    stage.name().to_owned(),
                    JsonValue::object([
                        ("seconds", JsonValue::Number(snapshot.stage_seconds(stage))),
                        ("calls", snapshot.stage_calls(stage).to_json()),
                    ]),
                )
            })
            .collect(),
    );
    let optional_rate = |rate: Option<f64>| match rate {
        None => JsonValue::Null,
        Some(rate) => JsonValue::Number(rate),
    };
    let samples = snapshot.counter(Counter::SamplesEvaluated);
    let samples_per_second = match metrics.elapsed_seconds {
        Some(seconds) if seconds > 0.0 && samples > 0 => {
            JsonValue::Number(samples as f64 / seconds)
        }
        _ => JsonValue::Null,
    };
    JsonValue::object([
        ("format", METRICS_REPORT_FORMAT.to_json()),
        ("telemetry", metrics.to_json()),
        (
            "derived",
            JsonValue::object([
                ("stage_seconds", stage_split),
                (
                    "widegen_lane_utilisation",
                    optional_rate(snapshot.wide_lane_utilisation()),
                ),
                (
                    "observe_fallback_rate",
                    optional_rate(snapshot.observe_fallback_rate()),
                ),
                ("samples_per_second", samples_per_second),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated_snapshot() -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        for (i, slot) in snapshot.counters.iter_mut().enumerate() {
            *slot = (i as u64 + 1) * 7;
        }
        for (i, slot) in snapshot.histograms[0].iter_mut().enumerate() {
            *slot = i as u64 * 3;
        }
        for (i, slot) in snapshot.stage_nanos.iter_mut().enumerate() {
            *slot = (i as u64 + 1) * 1_000_000_001;
        }
        for (i, slot) in snapshot.stage_calls.iter_mut().enumerate() {
            *slot = i as u64 + 1;
        }
        snapshot
    }

    #[test]
    fn snapshot_round_trips_exactly_through_text() {
        let snapshot = populated_snapshot();
        let text = snapshot_to_json(&snapshot).to_pretty_string();
        let round = snapshot_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round, snapshot);
    }

    #[test]
    fn empty_snapshot_round_trips_and_unknown_keys_are_ignored() {
        let round = snapshot_from_json(&snapshot_to_json(&MetricsSnapshot::default())).unwrap();
        assert_eq!(round, MetricsSnapshot::default());
        // A future build's extra counter does not break this build's loader,
        // and absent sections read as zero.
        let foreign =
            JsonValue::parse("{\"counters\": {\"dies_generated\": 5, \"from_the_future\": 9}}")
                .unwrap();
        let snapshot = snapshot_from_json(&foreign).unwrap();
        assert_eq!(snapshot.counter(Counter::DiesGenerated), 5);
        assert_eq!(snapshot.counter(Counter::SamplesEvaluated), 0);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        for bad in [
            "{\"counters\": {\"dies_generated\": \"x\"}}",
            "{\"histograms\": {\"faults_per_die\": [1, 2]}}",
            "{\"stages\": {\"plan\": {\"calls\": 1}}}",
        ] {
            assert!(
                snapshot_from_json(&JsonValue::parse(bad).unwrap()).is_err(),
                "{bad}"
            );
        }
    }

    #[test]
    fn shard_metrics_round_trip_and_empty_is_null() {
        let empty = ShardMetrics::default();
        assert!(empty.is_empty());
        assert_eq!(empty.to_json(), JsonValue::Null);
        assert_eq!(ShardMetrics::from_json(&JsonValue::Null).unwrap(), empty);

        let metrics = ShardMetrics {
            elapsed_seconds: Some(2.5),
            generation_seconds: Some(0.75),
            kernel: Some("auto:sparse".to_owned()),
            auto_threshold: Some(0.0625),
            snapshot: Some(populated_snapshot()),
        };
        let text = metrics.to_json().to_pretty_string();
        let round = ShardMetrics::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(round, metrics);
    }

    #[test]
    fn absorb_sums_clocks_and_snapshots_and_keeps_the_kernel_identity() {
        let mut a = ShardMetrics {
            elapsed_seconds: Some(1.0),
            generation_seconds: None,
            kernel: None,
            auto_threshold: None,
            snapshot: Some(populated_snapshot()),
        };
        let b = ShardMetrics {
            elapsed_seconds: Some(2.0),
            generation_seconds: Some(0.5),
            kernel: Some("sparse".to_owned()),
            auto_threshold: Some(0.25),
            snapshot: Some(populated_snapshot()),
        };
        a.absorb(&b);
        assert_eq!(a.elapsed_seconds, Some(3.0));
        assert_eq!(a.generation_seconds, Some(0.5));
        assert_eq!(a.kernel.as_deref(), Some("sparse"));
        assert_eq!(a.auto_threshold, Some(0.25));
        let merged = a.snapshot.unwrap();
        let single = populated_snapshot();
        for (&counter, _) in Counter::ALL.iter().zip(0..) {
            assert_eq!(merged.counter(counter), 2 * single.counter(counter));
        }
        // None + Some adopts the snapshot.
        let mut none = ShardMetrics::default();
        none.absorb(&b);
        assert_eq!(none.snapshot, Some(populated_snapshot()));
    }

    #[test]
    fn metrics_report_carries_the_derived_rates() {
        let mut snapshot = MetricsSnapshot::default();
        snapshot.counters[Counter::WideGenLaneSteps as usize] = 100;
        snapshot.counters[Counter::WideGenLanesActive as usize] = 80;
        snapshot.counters[Counter::ObserveBlockRows as usize] = 90;
        snapshot.counters[Counter::ObserveFallbackRows as usize] = 10;
        snapshot.counters[Counter::SamplesEvaluated as usize] = 500;
        let report = metrics_report(&ShardMetrics {
            elapsed_seconds: Some(2.0),
            snapshot: Some(snapshot),
            ..ShardMetrics::default()
        });
        assert_eq!(
            report.get("format").and_then(JsonValue::as_str),
            Some(METRICS_REPORT_FORMAT)
        );
        let derived = report.get("derived").unwrap();
        assert_eq!(
            derived
                .get("widegen_lane_utilisation")
                .and_then(JsonValue::as_f64),
            Some(0.8)
        );
        assert_eq!(
            derived
                .get("observe_fallback_rate")
                .and_then(JsonValue::as_f64),
            Some(0.1)
        );
        assert_eq!(
            derived
                .get("samples_per_second")
                .and_then(JsonValue::as_f64),
            Some(250.0)
        );
        // No lane steps → no utilisation claim.
        let empty = metrics_report(&ShardMetrics::default());
        assert!(matches!(
            empty
                .get("derived")
                .unwrap()
                .get("widegen_lane_utilisation"),
            Some(JsonValue::Null)
        ));
    }
}
