//! Canonical figure-campaign definitions shared by the monolithic figure
//! binaries and the sharded-campaign pair (`campaign_shard` /
//! `campaign_merge`).
//!
//! The byte-identical shard-merge invariant demands that every process of a
//! sharded campaign derives the *same* engine configuration, scheme
//! catalogue, seed and series rendering from the same flags. This module is
//! that single source of truth: [`FigureSpec`] captures a figure campaign's
//! identity (figure, backend, scale, sample budget, benchmark panels),
//! [`Fig5Campaign`] / [`Fig7Campaign`] materialise it into engines, and the
//! `*_series` helpers render results into the exact JSON series the
//! monolithic binaries emit — `fig5_mse_cdf` and `fig7_quality` call the
//! same helpers, so a merged K-shard campaign reproduces their `--json`
//! output byte for byte.

use crate::cli::RunOptions;
use crate::json::{JsonValue, ToJson};
use faultmit_analysis::{
    CatalogueAccumulator, MonteCarloConfig, MonteCarloEngine, SchemeMseResult,
};
use faultmit_apps::{Benchmark, QualityCdfResult, QualityEvaluator};
use faultmit_core::Scheme;
use faultmit_memsim::{Backend, BackendKind, FaultBackend, MemoryConfig};
use faultmit_sim::{Parallelism, ShardSpec};
use std::fmt;
use std::str::FromStr;

/// A figure whose Monte-Carlo campaign can run sharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FigureKind {
    /// Fig. 5 — memory-MSE CDFs over the die population.
    Fig5,
    /// Fig. 7 — application-quality CDFs per benchmark.
    Fig7,
}

impl FigureKind {
    /// Canonical figure name (`"fig5"` / `"fig7"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FigureKind::Fig5 => "fig5",
            FigureKind::Fig7 => "fig7",
        }
    }
}

impl fmt::Display for FigureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FigureKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fig5" | "fig5_mse_cdf" => Ok(FigureKind::Fig5),
            "fig7" | "fig7_quality" => Ok(FigureKind::Fig7),
            other => Err(format!("unknown figure '{other}', expected fig5|fig7")),
        }
    }
}

/// Resolves benchmark selectors (`elasticnet`, `pca`, `knn` and their
/// aliases) into [`Benchmark`]s; an empty selector list selects all three.
///
/// Unknown names are reported on stderr and skipped — the behaviour
/// `fig7_quality` has always had.
#[must_use]
pub fn selected_benchmarks(selectors: &[String]) -> Vec<Benchmark> {
    if selectors.is_empty() {
        return Benchmark::ALL.to_vec();
    }
    selectors
        .iter()
        .filter_map(|name| match name.to_ascii_lowercase().as_str() {
            "elasticnet" | "wine" => Some(Benchmark::Elasticnet),
            "pca" | "madelon" => Some(Benchmark::Pca),
            "knn" | "har" | "activity" => Some(Benchmark::Knn),
            other => {
                eprintln!("unknown benchmark '{other}', expected elasticnet|pca|knn");
                None
            }
        })
        .collect()
}

fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    match name.to_ascii_lowercase().as_str() {
        "elasticnet" => Ok(Benchmark::Elasticnet),
        "pca" => Ok(Benchmark::Pca),
        "knn" => Ok(Benchmark::Knn),
        other => Err(format!("unknown benchmark '{other}' in figure spec")),
    }
}

/// The identity of one figure campaign: everything a process needs to
/// reconstruct the exact engine configuration, plus nothing derived.
///
/// Two shard files belong to the same campaign exactly when their specs are
/// equal; all derived quantities (memory geometry, seed, `N_max`, scheme
/// catalogue) are recomputed deterministically from the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureSpec {
    /// Which figure's campaign this is.
    pub figure: FigureKind,
    /// Fault-generation technology.
    pub backend: BackendKind,
    /// Paper-scale (`--full`) or reduced configuration.
    pub full_scale: bool,
    /// Monte-Carlo fault maps per failure count.
    pub samples_per_count: usize,
    /// Benchmark panels (Fig. 7 only; empty for Fig. 5).
    pub benchmarks: Vec<Benchmark>,
}

impl FigureSpec {
    /// Builds the spec the monolithic binary would run for these options,
    /// resolving the same defaults (`--full` scale, `--samples` override,
    /// `--backend`, positional benchmark selectors).
    #[must_use]
    pub fn from_options(figure: FigureKind, options: &RunOptions) -> Self {
        let (default_samples_per_count, benchmarks) = match figure {
            FigureKind::Fig5 => (if options.full_scale { 500 } else { 60 }, Vec::new()),
            FigureKind::Fig7 => (
                if options.full_scale { 20 } else { 4 },
                selected_benchmarks(&options.positional),
            ),
        };
        Self {
            figure,
            backend: options.backend_kind(),
            full_scale: options.full_scale,
            samples_per_count: options.samples_or(default_samples_per_count),
            benchmarks,
        }
    }

    /// The campaign seed baked into the figure protocol.
    #[must_use]
    pub fn seed(&self) -> u64 {
        match self.figure {
            FigureKind::Fig5 => 0xF165,
            FigureKind::Fig7 => 0xF167,
        }
    }

    /// Labels of the campaign panels a shard evaluates, in panel order
    /// (`["fig5"]`, or the Fig. 7 benchmark names).
    #[must_use]
    pub fn campaign_labels(&self) -> Vec<String> {
        match self.figure {
            FigureKind::Fig5 => vec!["fig5".to_owned()],
            FigureKind::Fig7 => self
                .benchmarks
                .iter()
                .map(|b| b.name().to_ascii_lowercase())
                .collect(),
        }
    }

    /// Serialises the spec for embedding in shard-state files.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("figure", self.figure.name().to_json()),
            (
                "backend",
                match self.backend {
                    BackendKind::Sram => "sram",
                    BackendKind::Dram => "dram",
                    BackendKind::Mlc => "mlc",
                }
                .to_json(),
            ),
            ("full_scale", self.full_scale.to_json()),
            ("samples_per_count", self.samples_per_count.to_json()),
            (
                "benchmarks",
                JsonValue::Array(
                    self.benchmarks
                        .iter()
                        .map(|b| b.name().to_ascii_lowercase().to_json())
                        .collect(),
                ),
            ),
        ])
    }

    /// Reads a spec back from shard-state JSON.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let figure = value
            .get("figure")
            .and_then(JsonValue::as_str)
            .ok_or("spec is missing 'figure'")?
            .parse::<FigureKind>()?;
        let backend = value
            .get("backend")
            .and_then(JsonValue::as_str)
            .ok_or("spec is missing 'backend'")?
            .parse::<BackendKind>()
            .map_err(|e| e.to_string())?;
        let full_scale = value
            .get("full_scale")
            .and_then(JsonValue::as_bool)
            .ok_or("spec is missing 'full_scale'")?;
        let samples_per_count = value
            .get("samples_per_count")
            .and_then(JsonValue::as_u64)
            .ok_or("spec is missing 'samples_per_count'")? as usize;
        let benchmarks = value
            .get("benchmarks")
            .and_then(JsonValue::as_array)
            .ok_or("spec is missing 'benchmarks'")?
            .iter()
            .map(|b| {
                b.as_str()
                    .ok_or_else(|| "benchmark names must be strings".to_owned())
                    .and_then(benchmark_from_name)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            figure,
            backend,
            full_scale,
            samples_per_count,
            benchmarks,
        })
    }
}

/// The materialised Fig. 5 campaign: engine, catalogue and seed, all derived
/// from a [`FigureSpec`].
#[derive(Debug, Clone)]
pub struct Fig5Campaign {
    /// The MSE engine at the figure's memory/backend/budget.
    pub engine: MonteCarloEngine<Backend>,
    /// The Fig. 5 scheme catalogue.
    pub schemes: Vec<Scheme>,
    /// The campaign seed.
    pub seed: u64,
    /// Largest simulated failure count.
    pub max_failures: u64,
}

impl Fig5Campaign {
    /// Builds the campaign for a spec (the spec's figure must be
    /// [`FigureKind::Fig5`]).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration errors.
    pub fn from_spec(
        spec: &FigureSpec,
        parallelism: Parallelism,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        assert_eq!(spec.figure, FigureKind::Fig5, "not a Fig. 5 spec");
        // The paper evaluates a 16 KB memory at P_cell = 5e-6 over failure
        // counts 1..150 with 1e7 MC runs; the reduced default keeps the same
        // memory and P_cell with a smaller budget.
        let max_failures = if spec.full_scale { 150 } else { 24 };
        let backend = Backend::at_p_cell(spec.backend, MemoryConfig::paper_16kb(), 5e-6)?;
        let config = MonteCarloConfig::for_backend(backend)
            .with_samples_per_count(spec.samples_per_count)
            .with_max_failures(max_failures)
            .with_parallelism(parallelism);
        Ok(Self {
            engine: MonteCarloEngine::new(config),
            schemes: Scheme::fig5_catalogue(),
            seed: spec.seed(),
            max_failures,
        })
    }

    /// Runs one shard, returning the raw accumulator state.
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard(
        &self,
        shard: ShardSpec,
    ) -> Result<CatalogueAccumulator, Box<dyn std::error::Error>> {
        Ok(self
            .engine
            .run_catalogue_shard(&self.schemes, self.seed, shard)?)
    }

    /// Reduces (possibly shard-merged) state to per-scheme results.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn results(
        &self,
        state: CatalogueAccumulator,
    ) -> Result<Vec<SchemeMseResult>, Box<dyn std::error::Error>> {
        Ok(self.engine.results_from_state(&self.schemes, state)?)
    }
}

/// One Fig. 5 JSON series (the shape `fig5_mse_cdf --json` has always
/// written).
#[derive(Debug)]
pub struct Fig5Series {
    /// Scheme name.
    pub scheme: String,
    /// `(mse, P(MSE <= mse))` points of the CDF on a log grid.
    pub cdf: Vec<(f64, f64)>,
    /// MSE needed to reach 99.9999 % yield (the paper's example target),
    /// if reachable with the simulated failure-count coverage.
    pub mse_at_six_nines_yield: Option<f64>,
    /// Yield at the paper's example constraint MSE < 10⁶.
    pub yield_at_mse_1e6: f64,
}

impl ToJson for Fig5Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("cdf", self.cdf.to_json()),
            (
                "mse_at_six_nines_yield",
                self.mse_at_six_nines_yield.to_json(),
            ),
            ("yield_at_mse_1e6", self.yield_at_mse_1e6.to_json()),
        ])
    }
}

/// Renders Fig. 5 results into the JSON series of `fig5_mse_cdf --json`.
#[must_use]
pub fn fig5_series(results: &[SchemeMseResult]) -> Vec<Fig5Series> {
    results
        .iter()
        .map(|result| {
            let grid = result.cdf.log_grid(40).unwrap_or_default();
            Fig5Series {
                scheme: result.scheme_name.clone(),
                cdf: result.cdf.evaluate_at(&grid),
                mse_at_six_nines_yield: result.mse_for_yield(0.999_999),
                yield_at_mse_1e6: result.yield_at_mse(1e6),
            }
        })
        .collect()
}

/// The materialised Fig. 7 campaign: per-benchmark evaluators over one
/// shared backend and scheme catalogue, all derived from a [`FigureSpec`].
#[derive(Debug, Clone)]
pub struct Fig7Campaign {
    /// One quality evaluator per benchmark panel, in spec order.
    pub evaluators: Vec<QualityEvaluator>,
    /// The shared fault backend (built at `P_cell = 10⁻³`).
    pub backend: Backend,
    /// The Fig. 7 scheme catalogue.
    pub schemes: Vec<Scheme>,
    /// The campaign seed.
    pub seed: u64,
    /// Largest simulated failure count (99 % die coverage).
    pub max_failures: u64,
    /// Monte-Carlo fault maps per failure count.
    pub samples_per_count: usize,
}

impl Fig7Campaign {
    /// Builds the campaign for a spec (the spec's figure must be
    /// [`FigureKind::Fig7`]).
    ///
    /// # Errors
    ///
    /// Propagates backend-calibration and evaluator-construction errors.
    pub fn from_spec(
        spec: &FigureSpec,
        parallelism: Parallelism,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        assert_eq!(spec.figure, FigureKind::Fig7, "not a Fig. 7 spec");
        // The paper: 16 KB memory, P_cell = 1e-3, 500 MC fault maps per
        // failure count; the reduced default keeps the protocol on a smaller
        // bank. Failure counts cover 99 % of the die population either way.
        let (samples, memory_rows) = if spec.full_scale {
            (1280usize, 4096usize)
        } else {
            (200, 512)
        };
        let backend = Backend::at_p_cell(spec.backend, MemoryConfig::new(memory_rows, 32)?, 1e-3)?;
        let max_failures = backend.failure_distribution()?.n_max(0.99);
        let evaluators = spec
            .benchmarks
            .iter()
            .map(|&benchmark| {
                QualityEvaluator::builder(benchmark)
                    .samples(samples)
                    .memory_rows(memory_rows)
                    .parallelism(parallelism)
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            evaluators,
            backend,
            schemes: vec![
                Scheme::unprotected32(),
                Scheme::pecc32(),
                Scheme::shuffle32(1)?,
                Scheme::shuffle32(2)?,
                Scheme::secded32(),
            ],
            seed: spec.seed(),
            max_failures,
            samples_per_count: spec.samples_per_count,
        })
    }

    /// Runs one shard of every benchmark panel, returning one accumulator
    /// per panel in spec order.
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn run_shard(
        &self,
        shard: ShardSpec,
    ) -> Result<Vec<CatalogueAccumulator>, Box<dyn std::error::Error>> {
        self.evaluators
            .iter()
            .map(|evaluator| {
                // The paper's protocol discards fault maps with more than
                // one fault per word (bounded redraw).
                Ok(evaluator.quality_shard_on(
                    &self.schemes,
                    &self.backend,
                    self.max_failures,
                    self.samples_per_count,
                    self.seed,
                    true,
                    shard,
                )?)
            })
            .collect()
    }

    /// Reduces one panel's (possibly shard-merged) state to per-scheme
    /// results.
    ///
    /// # Errors
    ///
    /// Propagates reduction errors.
    pub fn results(
        &self,
        panel: usize,
        state: CatalogueAccumulator,
    ) -> Result<Vec<QualityCdfResult>, Box<dyn std::error::Error>> {
        Ok(self.evaluators[panel].quality_results_from_state(
            &self.schemes,
            &self.backend,
            state,
        )?)
    }
}

/// One Fig. 7 JSON series (the shape `fig7_quality --json` has always
/// written).
#[derive(Debug)]
pub struct Fig7Series {
    /// Benchmark name.
    pub benchmark: String,
    /// Scheme name.
    pub scheme: String,
    /// Fault-free quality (denominator of the normalisation).
    pub baseline_quality: f64,
    /// `(normalised quality, P(Q <= q))` CDF points.
    pub cdf: Vec<(f64, f64)>,
    /// Fraction of dies achieving at least 95 % of the baseline.
    pub yield_at_95pct: f64,
    /// Fraction of dies achieving at least 99 % of the baseline.
    pub yield_at_99pct: f64,
}

impl ToJson for Fig7Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("benchmark", self.benchmark.to_json()),
            ("scheme", self.scheme.to_json()),
            ("baseline_quality", self.baseline_quality.to_json()),
            ("cdf", self.cdf.to_json()),
            ("yield_at_95pct", self.yield_at_95pct.to_json()),
            ("yield_at_99pct", self.yield_at_99pct.to_json()),
        ])
    }
}

/// Renders one benchmark's Fig. 7 results into the JSON series of
/// `fig7_quality --json`.
#[must_use]
pub fn fig7_series(benchmark: Benchmark, results: &[QualityCdfResult]) -> Vec<Fig7Series> {
    results
        .iter()
        .map(|result| {
            let grid: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
            Fig7Series {
                benchmark: benchmark.name().to_owned(),
                scheme: result.scheme_name.clone(),
                baseline_quality: result.baseline_quality,
                cdf: result.cdf.evaluate_at(&grid),
                yield_at_95pct: result.yield_at_min_quality(0.95),
                yield_at_99pct: result.yield_at_min_quality(0.99),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_kind_parses_names() {
        assert_eq!("fig5".parse::<FigureKind>().unwrap(), FigureKind::Fig5);
        assert_eq!("FIG7".parse::<FigureKind>().unwrap(), FigureKind::Fig7);
        assert_eq!(
            "fig5_mse_cdf".parse::<FigureKind>().unwrap(),
            FigureKind::Fig5
        );
        assert!("fig6".parse::<FigureKind>().is_err());
        assert_eq!(FigureKind::Fig5.to_string(), "fig5");
    }

    #[test]
    fn benchmark_selection_matches_fig7_behaviour() {
        assert_eq!(selected_benchmarks(&[]), Benchmark::ALL.to_vec());
        assert_eq!(
            selected_benchmarks(&["knn".to_owned(), "wine".to_owned()]),
            vec![Benchmark::Knn, Benchmark::Elasticnet]
        );
        assert!(selected_benchmarks(&["bogus".to_owned()]).is_empty());
    }

    #[test]
    fn spec_round_trips_through_json() {
        for figure in [FigureKind::Fig5, FigureKind::Fig7] {
            for backend in ["sram", "dram", "mlc"] {
                let options = RunOptions::parse(
                    ["--backend", backend, "--samples", "7", "pca"]
                        .iter()
                        .map(|s| (*s).to_owned()),
                );
                let spec = FigureSpec::from_options(figure, &options);
                assert_eq!(spec.samples_per_count, 7);
                let parsed = FigureSpec::from_json(&spec.to_json()).unwrap();
                assert_eq!(parsed, spec);
            }
        }
        assert!(FigureSpec::from_json(&JsonValue::Null).is_err());
    }

    #[test]
    fn fig5_spec_matches_the_monolithic_defaults() {
        let spec = FigureSpec::from_options(FigureKind::Fig5, &RunOptions::default());
        assert_eq!(spec.samples_per_count, 60);
        assert!(spec.benchmarks.is_empty());
        assert_eq!(spec.seed(), 0xF165);
        assert_eq!(spec.campaign_labels(), vec!["fig5".to_owned()]);
        let campaign = Fig5Campaign::from_spec(&spec, Parallelism::Serial).unwrap();
        assert_eq!(campaign.max_failures, 24);
        assert_eq!(campaign.schemes.len(), Scheme::fig5_catalogue().len());

        let full = FigureSpec {
            full_scale: true,
            samples_per_count: 500,
            ..spec
        };
        let campaign = Fig5Campaign::from_spec(&full, Parallelism::Serial).unwrap();
        assert_eq!(campaign.max_failures, 150);
    }

    #[test]
    fn fig7_spec_matches_the_monolithic_defaults() {
        let spec = FigureSpec::from_options(FigureKind::Fig7, &RunOptions::default());
        assert_eq!(spec.samples_per_count, 4);
        assert_eq!(spec.benchmarks, Benchmark::ALL.to_vec());
        assert_eq!(spec.seed(), 0xF167);
        assert_eq!(
            spec.campaign_labels(),
            vec!["elasticnet".to_owned(), "pca".to_owned(), "knn".to_owned()]
        );
        let campaign = Fig7Campaign::from_spec(&spec, Parallelism::Serial).unwrap();
        assert_eq!(campaign.evaluators.len(), 3);
        assert_eq!(campaign.schemes.len(), 5);
        assert!(campaign.max_failures > 0);
    }
}
