//! Fig. 2 — SRAM cell failure probability under V_DD scaling, and the
//! zero-failure yield collapse of a 16 KB memory.
//!
//! With `--backend dram` the analogue sweeps the DRAM retention law; the
//! operating point is two-dimensional there, so both axes are sweepable:
//! the default walks the refresh interval at `--temp-c` (default 45 °C),
//! while `--t-ref-ns <ns>` pins the refresh interval and walks the die
//! temperature instead.
//!
//! ```text
//! cargo run -p faultmit-bench --bin fig2_pcell_vs_vdd [-- --json results/fig2.json]
//! cargo run -p faultmit-bench --bin fig2_pcell_vs_vdd -- --backend dram --temp-c 85
//! cargo run -p faultmit-bench --bin fig2_pcell_vs_vdd -- --backend dram --t-ref-ns 6.4e7
//! ```

use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_memsim::{CellFailureModel, MemoryConfig, VddSweep};

#[derive(Debug)]
struct Fig2Point {
    vdd: f64,
    p_cell: f64,
    expected_failures_16kb: f64,
    zero_failure_yield_16kb: f64,
}

impl ToJson for Fig2Point {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("vdd", self.vdd.to_json()),
            ("p_cell", self.p_cell.to_json()),
            (
                "expected_failures_16kb",
                self.expected_failures_16kb.to_json(),
            ),
            (
                "zero_failure_yield_16kb",
                self.zero_failure_yield_16kb.to_json(),
            ),
        ])
    }
}

/// One point of a backend law sweep: the technology's own operating-point
/// knob (not a voltage, hence the distinct JSON shape from [`Fig2Point`]).
#[derive(Debug)]
struct BackendLawPoint {
    knob: f64,
    knob_unit: &'static str,
    p_cell: f64,
    expected_failures_16kb: f64,
    zero_failure_yield_16kb: f64,
}

impl ToJson for BackendLawPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("knob", self.knob.to_json()),
            ("knob_unit", self.knob_unit.to_json()),
            ("p_cell", self.p_cell.to_json()),
            (
                "expected_failures_16kb",
                self.expected_failures_16kb.to_json(),
            ),
            (
                "zero_failure_yield_16kb",
                self.zero_failure_yield_16kb.to_json(),
            ),
        ])
    }
}

/// The axis a DRAM-retention law sweep walks: the default sweeps the
/// refresh interval at a fixed temperature (`--temp-c`, default 45 °C);
/// `--t-ref-ns` pins the refresh interval and sweeps the die temperature
/// instead, so the retention law can be characterised on both of its
/// operating-point axes.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DramSweepAxis {
    RefreshInterval { temperature_c: f64 },
    Temperature { refresh_interval_ms: f64 },
}

impl DramSweepAxis {
    fn from_options(options: &RunOptions) -> Self {
        match options.t_ref_ns {
            // 1 ms = 1e6 ns; the CLI takes nanoseconds, the backend
            // milliseconds.
            Some(t_ref_ns) => DramSweepAxis::Temperature {
                refresh_interval_ms: t_ref_ns / 1e6,
            },
            None => DramSweepAxis::RefreshInterval {
                temperature_c: options.temp_c.unwrap_or(45.0),
            },
        }
    }
}

/// `--backend dram|mlc`: the analogue of Fig. 2 for the other fault
/// backends — the per-cell failure law against the technology's own
/// operating-point knob (refresh interval *or* temperature for DRAM
/// retention, level spacing for MLC NVM), with the same derived columns.
fn backend_law_sweep(
    options: &RunOptions,
    kind: faultmit_memsim::BackendKind,
) -> Result<(), Box<dyn std::error::Error>> {
    use faultmit_memsim::{BackendKind, DramRetentionBackend, FaultBackend, MlcNvmBackend};

    let memory = MemoryConfig::paper_16kb();
    let cells = memory.total_cells();
    let dram_axis = DramSweepAxis::from_options(options);
    let knobs: Vec<f64> = match (kind, dram_axis) {
        (BackendKind::Dram, DramSweepAxis::RefreshInterval { .. }) => {
            [4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0].to_vec()
        }
        (BackendKind::Dram, DramSweepAxis::Temperature { .. }) => {
            (0..9).map(|i| 25.0 + 10.0 * i as f64).collect()
        }
        (BackendKind::Mlc, _) => (0..10).map(|i| 16.0 - i as f64).collect(),
        (BackendKind::Sram, _) => unreachable!("SRAM uses the Fig. 2 voltage sweep"),
    };
    let (title, knob_header, knob_unit) = match (kind, dram_axis) {
        (BackendKind::Dram, DramSweepAxis::RefreshInterval { temperature_c }) => (
            format!(
                "Fig. 2 (DRAM analogue) — P_cell vs refresh interval ({temperature_c:.0}C, 16KB memory)"
            ),
            "t_ref (ms)",
            "ms",
        ),
        (BackendKind::Dram, DramSweepAxis::Temperature {
            refresh_interval_ms,
        }) => (
            format!(
                "Fig. 2 (DRAM analogue) — P_cell vs temperature (t_ref = {refresh_interval_ms} ms, 16KB memory)"
            ),
            "T (C)",
            "C",
        ),
        _ => (
            "Fig. 2 (MLC analogue) — P_cell vs level spacing (1-day drift, 16KB memory)".to_owned(),
            "spacing (sigma)",
            "sigma",
        ),
    };

    let mut table = Table::new(
        title,
        vec![
            knob_header.into(),
            "P_cell".into(),
            "E[failures] (16KB)".into(),
            "zero-failure yield".into(),
        ],
    );
    let mut series = Vec::new();
    for &knob in &knobs {
        let p_cell = match (kind, dram_axis) {
            (BackendKind::Dram, DramSweepAxis::RefreshInterval { temperature_c }) => {
                DramRetentionBackend::new(memory, knob, temperature_c)?.p_cell()
            }
            (
                BackendKind::Dram,
                DramSweepAxis::Temperature {
                    refresh_interval_ms,
                },
            ) => DramRetentionBackend::new(memory, refresh_interval_ms, knob)?.p_cell(),
            _ => MlcNvmBackend::new(memory, knob, 86_400.0)?.p_cell(),
        };
        let expected = p_cell * cells as f64;
        let yield_zero = (cells as f64 * (-p_cell).ln_1p()).exp();
        table.add_row(vec![
            format!("{knob:.1}"),
            format_sci(p_cell),
            format_sci(expected),
            format_percent(yield_zero),
        ]);
        series.push(BackendLawPoint {
            knob,
            knob_unit,
            p_cell,
            expected_failures_16kb: expected,
            zero_failure_yield_16kb: yield_zero,
        });
    }
    println!("{table}");
    options.write_json(&series)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let kind = options.backend_kind();
    if kind != faultmit_memsim::BackendKind::Sram {
        return backend_law_sweep(&options, kind);
    }
    let steps = if options.full_scale { 41 } else { 9 };

    let model = CellFailureModel::default_28nm();
    let memory = MemoryConfig::paper_16kb();
    let sweep = VddSweep::paper_fig2(steps)?;

    let mut table = Table::new(
        "Fig. 2 — P_cell vs V_DD (28nm analytical noise-margin model, 16KB memory)",
        vec![
            "V_DD (V)".into(),
            "P_cell".into(),
            "E[failures] (16KB)".into(),
            "zero-failure yield".into(),
        ],
    );
    let mut series = Vec::new();
    for vdd in sweep.voltages() {
        let p_cell = model.p_cell(vdd);
        let expected = model.expected_failures(vdd, memory.total_cells());
        let yield_zero = model.zero_failure_yield(vdd, memory.total_cells());
        table.add_row(vec![
            format!("{vdd:.3}"),
            format_sci(p_cell),
            format_sci(expected),
            format_percent(yield_zero),
        ]);
        series.push(Fig2Point {
            vdd,
            p_cell,
            expected_failures_16kb: expected,
            zero_failure_yield_16kb: yield_zero,
        });
    }
    println!("{table}");

    // The paper's observation: the traditional yield criterion collapses near
    // 0.73 V for a 16 KB memory.
    let collapse = sweep
        .voltages()
        .find(|&v| model.zero_failure_yield(v, memory.total_cells()) > 0.5)
        .unwrap_or(1.0);
    println!(
        "zero-failure yield first exceeds 50% at V_DD ~= {collapse:.2} V (paper: collapse near 0.73 V)"
    );

    options.write_json(&series)?;
    Ok(())
}
