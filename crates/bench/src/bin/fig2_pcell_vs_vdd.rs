//! Fig. 2 — SRAM cell failure probability under V_DD scaling, and the
//! zero-failure yield collapse of a 16 KB memory.
//!
//! With `--backend dram|mlc` the analogue sweeps the technology's own
//! failure law; the operating-point axis (and its `--t-ref-ns` /
//! `--temp-c` controls) is resolved by the shared
//! [`faultmit_bench::cli::LawSweep`] helper, so every consumer of the
//! sweep flags agrees on their meaning.
//!
//! ```text
//! cargo run -p faultmit-bench --bin fig2_pcell_vs_vdd [-- --json results/fig2.json]
//! cargo run -p faultmit-bench --bin fig2_pcell_vs_vdd -- --backend dram --temp-c 85
//! cargo run -p faultmit-bench --bin fig2_pcell_vs_vdd -- --backend dram --t-ref-ns 6.4e7
//! ```

use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_bench::cli::LawSweep;
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_memsim::{CellFailureModel, MemoryConfig, VddSweep};

#[derive(Debug)]
struct Fig2Point {
    vdd: f64,
    p_cell: f64,
    expected_failures_16kb: f64,
    zero_failure_yield_16kb: f64,
}

impl ToJson for Fig2Point {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("vdd", self.vdd.to_json()),
            ("p_cell", self.p_cell.to_json()),
            (
                "expected_failures_16kb",
                self.expected_failures_16kb.to_json(),
            ),
            (
                "zero_failure_yield_16kb",
                self.zero_failure_yield_16kb.to_json(),
            ),
        ])
    }
}

/// One point of a backend law sweep: the technology's own operating-point
/// knob (not a voltage, hence the distinct JSON shape from [`Fig2Point`]).
#[derive(Debug)]
struct BackendLawPoint {
    knob: f64,
    knob_unit: &'static str,
    p_cell: f64,
    expected_failures_16kb: f64,
    zero_failure_yield_16kb: f64,
}

impl ToJson for BackendLawPoint {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("knob", self.knob.to_json()),
            ("knob_unit", self.knob_unit.to_json()),
            ("p_cell", self.p_cell.to_json()),
            (
                "expected_failures_16kb",
                self.expected_failures_16kb.to_json(),
            ),
            (
                "zero_failure_yield_16kb",
                self.zero_failure_yield_16kb.to_json(),
            ),
        ])
    }
}

/// `--backend dram|mlc`: the analogue of Fig. 2 for the other fault
/// backends — the per-cell failure law against the technology's own
/// operating-point knob, with the same derived columns. The axis, knob
/// grid and labels all come from the shared [`LawSweep`] resolution.
fn backend_law_sweep(
    options: &RunOptions,
    sweep: &LawSweep,
) -> Result<(), Box<dyn std::error::Error>> {
    let memory = MemoryConfig::paper_16kb();
    let cells = memory.total_cells();

    let mut table = Table::new(
        sweep.title.clone(),
        vec![
            sweep.knob_header.into(),
            "P_cell".into(),
            "E[failures] (16KB)".into(),
            "zero-failure yield".into(),
        ],
    );
    let mut series = Vec::new();
    for &knob in &sweep.knobs {
        let p_cell = sweep.p_cell(memory, knob)?;
        let expected = p_cell * cells as f64;
        let yield_zero = (cells as f64 * (-p_cell).ln_1p()).exp();
        table.add_row(vec![
            format!("{knob:.1}"),
            format_sci(p_cell),
            format_sci(expected),
            format_percent(yield_zero),
        ]);
        series.push(BackendLawPoint {
            knob,
            knob_unit: sweep.knob_unit,
            p_cell,
            expected_failures_16kb: expected,
            zero_failure_yield_16kb: yield_zero,
        });
    }
    println!("{table}");
    options.write_json(&series)?;
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    if let Some(sweep) = LawSweep::for_backend(options.backend_kind(), &options) {
        return backend_law_sweep(&options, &sweep);
    }
    let steps = if options.full_scale { 41 } else { 9 };

    let model = CellFailureModel::default_28nm();
    let memory = MemoryConfig::paper_16kb();
    let sweep = VddSweep::paper_fig2(steps)?;

    let mut table = Table::new(
        "Fig. 2 — P_cell vs V_DD (28nm analytical noise-margin model, 16KB memory)",
        vec![
            "V_DD (V)".into(),
            "P_cell".into(),
            "E[failures] (16KB)".into(),
            "zero-failure yield".into(),
        ],
    );
    let mut series = Vec::new();
    for vdd in sweep.voltages() {
        let p_cell = model.p_cell(vdd);
        let expected = model.expected_failures(vdd, memory.total_cells());
        let yield_zero = model.zero_failure_yield(vdd, memory.total_cells());
        table.add_row(vec![
            format!("{vdd:.3}"),
            format_sci(p_cell),
            format_sci(expected),
            format_percent(yield_zero),
        ]);
        series.push(Fig2Point {
            vdd,
            p_cell,
            expected_failures_16kb: expected,
            zero_failure_yield_16kb: yield_zero,
        });
    }
    println!("{table}");

    // The paper's observation: the traditional yield criterion collapses near
    // 0.73 V for a 16 KB memory.
    let collapse = sweep
        .voltages()
        .find(|&v| model.zero_failure_yield(v, memory.total_cells()) > 0.5)
        .unwrap_or(1.0);
    println!(
        "zero-failure yield first exceeds 50% at V_DD ~= {collapse:.2} V (paper: collapse near 0.73 V)"
    );

    options.write_json(&series)?;
    Ok(())
}
