//! Ablation — FM-LUT shift-selection policy for rows with multiple faults.
//!
//! The paper defines the shift for a single faulty cell per word (Eq. (2)).
//! At low supply voltages rows with two or more faulty cells become common,
//! and the FM-LUT must then pick one shift that cannot protect every fault.
//! This ablation compares the **naive** policy (align the least significant
//! segment with the most significant faulty cell) against the **optimal**
//! exhaustive search, as a paired `sim::Campaign` — both policies score the
//! *same* Monte-Carlo fault maps.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry
//! `ablation_shift_policy`; each `(n_FM, faults/map)` sweep point is one
//! campaign panel, so the ablation shards via
//! `campaign_run --figure ablation_shift_policy`.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin ablation_shift_policy [-- --threads 4]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("ablation_shift_policy")
}
