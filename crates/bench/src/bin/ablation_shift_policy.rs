//! Ablation — FM-LUT shift-selection policy for rows with multiple faults.
//!
//! The paper defines the shift for a single faulty cell per word (Eq. (2)).
//! At low supply voltages rows with two or more faulty cells become common,
//! and the FM-LUT must then pick one shift that cannot protect every fault.
//! This ablation compares two policies as a **paired** `sim::Campaign` —
//! both policies score the *same* Monte-Carlo fault maps, fanned out over
//! worker threads:
//!
//! * **naive** — align the least significant segment with the *most
//!   significant* faulty cell (the direct generalisation of Eq. (2));
//! * **optimal** (the default in `FmLut::choose_shift`) — search all
//!   `2^{n_FM}` candidate shifts and minimise the summed squared error
//!   magnitude.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin ablation_shift_policy [-- --threads 4]
//! ```

use faultmit_analysis::memory_mse;
use faultmit_analysis::report::{format_sci, Table};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_core::{
    rotate_left, rotate_right, MitigationScheme, ObservedWord, Scheme, SegmentGeometry,
};
use faultmit_memsim::{corrupt_word, FaultMap, MemoryConfig};
use faultmit_sim::{Campaign, CampaignConfig, CollectRecords};

#[derive(Debug)]
struct AblationRow {
    n_fm: usize,
    faults_per_map: usize,
    mse_naive: f64,
    mse_optimal: f64,
    improvement_factor: f64,
}

impl ToJson for AblationRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("n_fm", self.n_fm.to_json()),
            ("faults_per_map", self.faults_per_map.to_json()),
            ("mse_naive", self.mse_naive.to_json()),
            ("mse_optimal", self.mse_optimal.to_json()),
            ("improvement_factor", self.improvement_factor.to_json()),
        ])
    }
}

/// Bit-shuffling with the naive multi-fault policy: align the least
/// significant segment to the most significant faulty cell.
#[derive(Debug, Clone, Copy)]
struct NaiveShuffle(SegmentGeometry);

impl MitigationScheme for NaiveShuffle {
    fn name(&self) -> String {
        format!("naive bit-shuffle nFM={}", self.0.n_fm())
    }

    fn word_bits(&self) -> usize {
        self.0.word_bits()
    }

    fn observe(&self, faults: &FaultMap, row: usize, written: u64) -> ObservedWord {
        let columns = faults.faulty_columns(row);
        let Some(&msb_fault) = columns.last() else {
            return ObservedWord::intact(written);
        };
        let x_fm = self.0.segment_of_bit(msb_fault);
        let shift = self
            .0
            .shift_amount(x_fm)
            .expect("segment index is in range");
        let mut stored = rotate_right(written, shift, self.0.word_bits());
        for col in columns {
            if let Some(kind) = faults.fault_at(row, col) {
                stored = corrupt_word(stored, col, kind);
            }
        }
        ObservedWord {
            value: rotate_left(stored, shift, self.0.word_bits()),
            reliable: true,
        }
    }

    fn worst_case_error_magnitude(&self, _bit: usize) -> u64 {
        self.0.max_error_magnitude()
    }

    fn extra_bits_per_row(&self) -> usize {
        self.0.n_fm()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let (default_maps, rows) = if options.full_scale {
        (400, 4096)
    } else {
        (60, 512)
    };
    let maps_per_point = options.samples_or(default_maps);

    let config = MemoryConfig::new(rows, 32)?;

    let mut table = Table::new(
        "Ablation — multi-fault shift policy (memory MSE, lower is better)",
        vec![
            "nFM".into(),
            "faults/map".into(),
            "naive (align to MSB fault)".into(),
            "optimal (exhaustive search)".into(),
            "improvement".into(),
        ],
    );
    let mut series = Vec::new();

    for n_fm in [1usize, 2, 3, 5] {
        let geometry = SegmentGeometry::new(32, n_fm)?;
        // Fault densities high enough that multi-fault rows actually occur.
        for &faults_per_map in &[rows / 8, rows / 2, rows] {
            // Paired pipeline pass: both policies score identical dies.
            let naive = NaiveShuffle(geometry);
            let optimal = Scheme::BitShuffle(geometry);
            let schemes: [&(dyn MitigationScheme + Sync); 2] = [&naive, &optimal];
            // The `--backend` axis swaps the fault technology: the shift
            // policies face the same clustered / level-biased maps.
            let campaign = Campaign::new(
                CampaignConfig::for_backend(options.backend_at_p_cell(config, 1e-3)?)?
                    .with_samples_per_count(maps_per_point)
                    .with_exact_failures(faults_per_map as u64)
                    .with_parallelism(options.parallelism()),
            );
            let records = campaign.run(&schemes, 0xAB1A, memory_mse, CollectRecords::new)?;

            let count = records.records.len().max(1) as f64;
            let mse_naive = records.records.iter().map(|r| r.metrics[0]).sum::<f64>() / count;
            let mse_optimal = records.records.iter().map(|r| r.metrics[1]).sum::<f64>() / count;
            // Paired invariant: the optimal policy includes the naive shift
            // in its search space, so it can never lose on any single die.
            debug_assert!(records
                .records
                .iter()
                .all(|r| r.metrics[1] <= r.metrics[0] + 1e-9));

            table.add_row(vec![
                n_fm.to_string(),
                faults_per_map.to_string(),
                format_sci(mse_naive),
                format_sci(mse_optimal),
                format!("{:.2}x", mse_naive / mse_optimal.max(f64::MIN_POSITIVE)),
            ]);
            series.push(AblationRow {
                n_fm,
                faults_per_map,
                mse_naive,
                mse_optimal,
                improvement_factor: mse_naive / mse_optimal.max(f64::MIN_POSITIVE),
            });
        }
    }
    println!("{table}");
    println!(
        "The optimal policy never loses to the naive one (it includes it in its search space); \
the gap widens as rows accumulate several faults."
    );

    options.write_json(&series)?;
    Ok(())
}
