//! Ablation — FM-LUT shift-selection policy for rows with multiple faults.
//!
//! The paper defines the shift for a single faulty cell per word (Eq. (2)).
//! At low supply voltages rows with two or more faulty cells become common,
//! and the FM-LUT must then pick one shift that cannot protect every fault.
//! This ablation compares two policies on Monte-Carlo fault maps:
//!
//! * **naive** — align the least significant segment with the *most
//!   significant* faulty cell (the direct generalisation of Eq. (2));
//! * **optimal** (the default in [`FmLut::choose_shift`]) — search all
//!   `2^{n_FM}` candidate shifts and minimise the summed squared error
//!   magnitude.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin ablation_shift_policy
//! ```

use faultmit_analysis::report::{format_sci, Table};
use faultmit_bench::RunOptions;
use faultmit_core::{FmLut, SegmentGeometry};
use faultmit_memsim::{FaultMapSampler, MemoryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct AblationRow {
    n_fm: usize,
    faults_per_map: usize,
    mse_naive: f64,
    mse_optimal: f64,
    improvement_factor: f64,
}

/// Squared error magnitude of one row under a given shift index.
fn row_cost(geometry: SegmentGeometry, columns: &[usize], x_fm: usize) -> f64 {
    let shift = x_fm * geometry.segment_bits();
    columns
        .iter()
        .map(|&col| {
            let bit = (col + geometry.word_bits() - shift) % geometry.word_bits();
            4.0_f64.powi(bit as i32)
        })
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let (maps_per_point, rows) = if options.full_scale { (400, 4096) } else { (60, 512) };

    let config = MemoryConfig::new(rows, 32)?;
    let sampler = FaultMapSampler::new(config);

    let mut table = Table::new(
        "Ablation — multi-fault shift policy (memory MSE, lower is better)",
        vec![
            "nFM".into(),
            "faults/map".into(),
            "naive (align to MSB fault)".into(),
            "optimal (exhaustive search)".into(),
            "improvement".into(),
        ],
    );
    let mut series = Vec::new();

    for n_fm in [1usize, 2, 3, 5] {
        let geometry = SegmentGeometry::new(32, n_fm)?;
        // Fault densities high enough that multi-fault rows actually occur.
        for &faults_per_map in &[rows / 8, rows / 2, rows] {
            let mut rng = StdRng::seed_from_u64(0xAB1A);
            let mut naive_total = 0.0;
            let mut optimal_total = 0.0;
            for _ in 0..maps_per_point {
                let map = sampler.sample_with_count(&mut rng, faults_per_map)?;
                for row in map.faulty_rows() {
                    let columns = map.faulty_columns(row);
                    let naive_x = geometry.segment_of_bit(*columns.last().expect("faulty row"));
                    let optimal_x = FmLut::choose_shift(geometry, &columns);
                    naive_total += row_cost(geometry, &columns, naive_x);
                    optimal_total += row_cost(geometry, &columns, optimal_x);
                }
            }
            let scale = (maps_per_point * rows) as f64;
            let mse_naive = naive_total / scale;
            let mse_optimal = optimal_total / scale;
            table.add_row(vec![
                n_fm.to_string(),
                faults_per_map.to_string(),
                format_sci(mse_naive),
                format_sci(mse_optimal),
                format!("{:.2}x", mse_naive / mse_optimal.max(f64::MIN_POSITIVE)),
            ]);
            series.push(AblationRow {
                n_fm,
                faults_per_map,
                mse_naive,
                mse_optimal,
                improvement_factor: mse_naive / mse_optimal.max(f64::MIN_POSITIVE),
            });
        }
    }
    println!("{table}");
    println!(
        "The optimal policy never loses to the naive one (it includes it in its search space); \
the gap widens as rows accumulate several faults."
    );

    options.write_json(&series)?;
    Ok(())
}
