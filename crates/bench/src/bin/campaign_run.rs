//! Single-command, multi-process, resumable execution of any registered
//! figure campaign.
//!
//! `campaign_run --figure <name> --shards K --jobs J` splits the figure's
//! campaign into K shards, spawns up to J `campaign_shard` child processes
//! at a time (sibling binary of this executable), retries failed shards up
//! to `--retries R` times (default 2), then merges the K checkpoint files
//! and renders the figure JSON — **byte-identical** to the monolithic
//! figure binary's `--json` output at the same flags, because every stage
//! shares the `faultmit_bench::figures` registry code path.
//!
//! Completed shard files under `--dir` (default `campaign-shards/`) are
//! checkpoints: a killed or crashed driver re-run recomputes only the
//! missing or foreign shards, and a corrupted checkpoint is detected by
//! `campaign_shard` and recomputed. Figure flags (`--backend`, `--samples`,
//! `--full`, benchmark selectors) pass through to the children and to the
//! final render.
//!
//! ```text
//! campaign_run --figure fig8_backend_matrix --shards 4 --jobs 2 \
//!     --samples 5 --out results/fig8.json
//! campaign_run --figure list        # print the figure catalogue
//! ```

use faultmit_bench::figures::{
    check_identity_flags, check_tuning_flags, find_figure, registry, FigureDef,
};
use faultmit_bench::shard::{load_shard_files, ShardState};
use faultmit_bench::RunOptions;
use faultmit_sim::ShardSpec;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// How often the driver prints a live progress line while children run.
const HEARTBEAT_INTERVAL: Duration = Duration::from_secs(5);

/// One queued shard evaluation and how often it has been attempted.
struct ShardJob {
    shard: ShardSpec,
    attempts: usize,
}

/// Total Monte-Carlo samples a shard checkpoint recorded across its panels
/// (deterministic table panels carry no sample stream).
fn shard_samples(state: &ShardState) -> usize {
    state
        .panels
        .iter()
        .filter_map(|panel| panel.state.samples_recorded())
        .sum()
}

/// Median of an unsorted, possibly empty slice of durations.
fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(sorted[sorted.len() / 2])
}

fn shard_binary() -> Result<PathBuf, Box<dyn std::error::Error>> {
    let driver = std::env::current_exe()?;
    let dir = driver
        .parent()
        .ok_or("cannot locate the campaign_run executable directory")?;
    let sibling = dir.join(format!("campaign_shard{}", std::env::consts::EXE_SUFFIX));
    if !sibling.exists() {
        return Err(format!(
            "campaign_shard not found next to campaign_run at {}; \
             build the full binary set first (cargo build -p faultmit-bench)",
            sibling.display()
        )
        .into());
    }
    Ok(sibling)
}

/// The figure flags forwarded to every `campaign_shard` child, plus an
/// explicit per-child thread budget: without one each child would default
/// to one worker per CPU and `J` concurrent children would oversubscribe
/// the machine `J`-fold, so the CPU pool is divided across the jobs
/// (results are bit-identical at any worker count, so this is purely a
/// scheduling choice).
fn passthrough_args(
    options: &RunOptions,
    figure: &'static dyn FigureDef,
    jobs: usize,
) -> Vec<String> {
    let mut args = vec!["--figure".to_owned(), figure.name().to_owned()];
    if options.full_scale {
        args.push("--full".to_owned());
    }
    if let Some(samples) = options.samples {
        args.push("--samples".to_owned());
        args.push(samples.to_string());
    }
    if let Some(backend) = options.backend {
        args.push("--backend".to_owned());
        args.push(backend.name().to_owned());
    }
    if let Some(image) = options.image {
        args.push("--image".to_owned());
        args.push(image.to_string());
    }
    if let Some(law) = options.kind_law {
        args.push("--kind-law".to_owned());
        args.push(law.to_string());
    }
    if let Some(kernel) = options.kernel {
        args.push("--kernel".to_owned());
        args.push(kernel.to_string());
    }
    if let Some(wide) = options.wide_generation {
        args.push("--wide-generation".to_owned());
        args.push(if wide { "on" } else { "off" }.to_owned());
    }
    if let Some(threshold) = options.auto_threshold {
        args.push("--auto-threshold".to_owned());
        args.push(threshold.to_string());
    }
    let threads = options.threads.unwrap_or_else(|| {
        let cpus = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        (cpus / jobs).max(1)
    });
    args.push("--threads".to_owned());
    args.push(threads.to_string());
    args.extend(options.positional.iter().cloned());
    args
}

fn shard_path(dir: &Path, figure: &'static dyn FigureDef, shard: ShardSpec) -> PathBuf {
    dir.join(format!(
        "{}-{}of{}.json",
        figure.name(),
        shard.shard_index(),
        shard.shard_count()
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let Some(name) = options.figure.clone() else {
        return Err(
            "usage: campaign_run --figure <name> --shards K [--jobs J] [--retries R]\
                    \n       [--dir <checkpoint-dir>] [--out <figure-json-path>]\
                    \n       [--backend sram|dram|mlc] [--samples N] [--threads N] [--full]\
                    \n       [--image <spec>] [--kind-law flip|stuck-at|stuck-at:P]\
                    \n       [--kernel scalar|sparse|bitsliced|bitsliced256|auto]\
                    \n       [--wide-generation on|off] [--auto-threshold <faults-per-row>]\
                    \n       [--metrics <metrics-json-path>]\
                    \nrun 'campaign_run --figure list' for the figure catalogue"
                .into(),
        );
    };
    if name == "list" {
        println!("registered figures:");
        for figure in registry() {
            println!("  {:<24} {}", figure.name(), figure.description());
        }
        return Ok(());
    }
    let figure = find_figure(&name)?;
    if let Some(error) = &options.shard_error {
        return Err(error.clone().into());
    }
    // A typo in --shards/--jobs/--retries must not silently degrade the
    // campaign split (the same policy an unparseable --shard has), and a
    // typo in --image/--kind-law must not silently select a different
    // campaign sweep.
    if !options.driver_flag_errors.is_empty() {
        return Err(options.driver_flag_errors.join("; ").into());
    }
    if !options.spec_flag_errors.is_empty() {
        return Err(options.spec_flag_errors.join("; ").into());
    }
    // Same policy for the tuning flags: a typo'd --auto-threshold must not
    // silently run (and checkpoint) a different tuning.
    if !options.tuning_flag_errors.is_empty() {
        return Err(options.tuning_flag_errors.join("; ").into());
    }
    check_tuning_flags(&options)?;

    let shard_count = options.shards.unwrap_or(1).max(1);
    let jobs = options
        .jobs
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .clamp(1, shard_count);
    let max_retries = options.retries.unwrap_or(2);
    let dir = options
        .dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("campaign-shards"));
    std::fs::create_dir_all(&dir)?;

    let spec = figure.spec(&options);
    check_identity_flags(&spec, &options)?;
    let shard_bin = shard_binary()?;
    let child_args = passthrough_args(&options, figure, jobs);
    println!(
        "campaign_run: {} as {shard_count} shard(s), {jobs} concurrent job(s), \
         {max_retries} retr{} per shard, checkpoints in {}",
        figure.name(),
        if max_retries == 1 { "y" } else { "ies" },
        dir.display()
    );

    // Schedule: a queue of shards, at most `jobs` children in flight.
    // `campaign_shard` itself skips shards whose checkpoint files already
    // match this campaign slice, so resuming a killed driver only pays for
    // the missing work.
    let mut queue: VecDeque<ShardJob> = ShardSpec::all(shard_count)
        .map(|shard| ShardJob { shard, attempts: 0 })
        .collect();
    let mut running: Vec<(ShardJob, Child, Instant)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // Live-progress bookkeeping for the heartbeat: driver-observed attempt
    // durations size the ETA and flag in-flight stragglers, completed
    // sample counts give a running throughput estimate.
    let campaign_started = Instant::now();
    // `None` until the first poll, so even a campaign shorter than the
    // heartbeat interval prints one progress line.
    let mut last_heartbeat: Option<Instant> = None;
    let mut completed_count = 0usize;
    let mut completed_samples = 0usize;
    let mut attempt_durations: Vec<f64> = Vec::new();

    while !(queue.is_empty() && running.is_empty()) {
        while running.len() < jobs {
            let Some(mut job) = queue.pop_front() else {
                break;
            };
            job.attempts += 1;
            let out = shard_path(&dir, figure, job.shard);
            let child = Command::new(&shard_bin)
                .args(&child_args)
                .arg("--shard")
                .arg(job.shard.to_string())
                .arg("--out")
                .arg(&out)
                .spawn()
                .map_err(|e| format!("cannot spawn {}: {e}", shard_bin.display()))?;
            running.push((job, child, Instant::now()));
        }

        // Reap the first finished child (bounded poll keeps this portable
        // without signal handling). Between polls, a periodic heartbeat
        // reports per-shard progress, a live throughput estimate and an
        // ETA so a long campaign is observable without waiting for the
        // final summary.
        let (index, status) = 'wait: loop {
            for (index, (_, child, _)) in running.iter_mut().enumerate() {
                if let Some(status) = child.try_wait()? {
                    break 'wait (index, status);
                }
            }
            if last_heartbeat.is_none_or(|at| at.elapsed() >= HEARTBEAT_INTERVAL) {
                last_heartbeat = Some(Instant::now());
                let in_flight: Vec<String> = running
                    .iter()
                    .map(|(job, _, started)| {
                        let seconds = started.elapsed().as_secs_f64();
                        // An in-flight shard more than 2x the median
                        // completed attempt is flagged as a straggler:
                        // the operator's cue to look at that host.
                        let flag = match median(&attempt_durations) {
                            Some(mid) if mid > 0.0 && seconds > 2.0 * mid => " [straggler]",
                            _ => "",
                        };
                        format!("shard {}: {seconds:.1}s{flag}", job.shard)
                    })
                    .collect();
                let wall = campaign_started.elapsed().as_secs_f64();
                let mut line = format!(
                    "heartbeat: {completed_count}/{shard_count} shard(s) complete, \
                     {} running ({}), {} queued",
                    running.len(),
                    in_flight.join(", "),
                    queue.len(),
                );
                if completed_samples > 0 && wall > 0.0 {
                    line.push_str(&format!(
                        ", ~{:.1} samples/s",
                        completed_samples as f64 / wall
                    ));
                }
                if let Some(mid) = median(&attempt_durations) {
                    let remaining = queue.len() + running.len();
                    let eta = mid * (remaining as f64 / jobs as f64).ceil();
                    line.push_str(&format!(", ETA ~{eta:.0}s"));
                }
                println!("{line}");
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        let (job, _, started) = running.swap_remove(index);

        // A zero exit must also have produced a matching checkpoint; treat
        // anything else as a failed attempt.
        let out = shard_path(&dir, figure, job.shard);
        let checkpoint = std::fs::read_to_string(&out)
            .ok()
            .and_then(|text| ShardState::parse(&text).ok())
            .filter(|state| state.matches(&spec, job.shard));
        let completed = status.success() && checkpoint.is_some();
        if completed {
            if let Some(state) = &checkpoint {
                completed_samples += shard_samples(state);
            }
            completed_count += 1;
            attempt_durations.push(started.elapsed().as_secs_f64());
            println!(
                "shard {} complete ({} attempt{})",
                job.shard,
                job.attempts,
                if job.attempts == 1 { "" } else { "s" }
            );
        } else if job.attempts <= max_retries {
            eprintln!(
                "shard {} failed ({status}); retrying ({}/{max_retries})",
                job.shard, job.attempts
            );
            queue.push_back(job);
        } else {
            failures.push(format!(
                "shard {} failed after {} attempts (last: {status})",
                job.shard, job.attempts
            ));
        }
    }

    if !failures.is_empty() {
        return Err(format!("campaign did not complete: {}", failures.join("; ")).into());
    }

    // Merge and render in-process through the same registry code path the
    // monolithic binary uses.
    let paths: Vec<PathBuf> = ShardSpec::all(shard_count)
        .map(|shard| shard_path(&dir, figure, shard))
        .collect();
    let states = load_shard_files(&paths)?;

    // Per-shard wall-clock and throughput summary (timing recorded in each
    // checkpoint by `campaign_shard`): the spread tells the operator how to
    // size K for the slowest host, and the samples/s · words/s rates make
    // runs comparable across hosts and kernel generations. Checkpoints from
    // before the telemetry existed simply report no timing.
    let words_per_sample = figure.words_per_sample(&spec);
    println!("per-shard wall clock:");
    let mut timed_samples = 0usize;
    let recorded: Vec<f64> = states
        .iter()
        .filter_map(ShardState::elapsed_seconds)
        .collect();
    // Shards slower than 2x the median of the set are flagged: on a
    // uniform split they mark a slow host (or a noisy neighbour), the
    // operator's cue for sizing K or moving the work.
    let straggler_cutoff = median(&recorded)
        .filter(|&mid| mid > 0.0)
        .map(|mid| 2.0 * mid);
    for state in &states {
        let shard = state.shard.to_string();
        // Which evaluation kernel produced the checkpoint (recorded by
        // `campaign_shard`); throughput numbers only compare across runs of
        // the same kernel generation.
        let kernel = state
            .kernel()
            .map(|kernel| format!(", {kernel} kernel"))
            .unwrap_or_default();
        // Generation share from the checkpoint telemetry (absent in files
        // from before it existed). Generation seconds are CPU time summed
        // across the shard's workers, so the share of the wall clock can
        // exceed 100% at worker counts above one.
        let generation = match (state.generation_seconds(), state.elapsed_seconds()) {
            (Some(gen_seconds), Some(seconds)) if seconds > 0.0 => format!(
                ", gen {gen_seconds:.2}s CPU ({:.0}% of wall)",
                100.0 * gen_seconds / seconds
            ),
            (Some(gen_seconds), _) => format!(", gen {gen_seconds:.2}s CPU"),
            (None, _) => String::new(),
        };
        // A shard's sample count spans every Monte-Carlo panel it evaluated
        // (deterministic table panels carry no sample stream).
        let samples = shard_samples(state);
        let straggler = match (state.elapsed_seconds(), straggler_cutoff) {
            (Some(seconds), Some(cutoff)) if seconds > cutoff => " [straggler: >2x median]",
            _ => "",
        };
        match state.elapsed_seconds() {
            Some(seconds) if samples > 0 && seconds > 0.0 => {
                timed_samples += samples;
                // Per-shard throughput uses the shard's own wall clock —
                // never the merged campaign's — so a slow host cannot be
                // masked by fast siblings.
                let samples_per_second = samples as f64 / seconds;
                match words_per_sample {
                    Some(words) => println!(
                        "  shard {shard}: {seconds:.2}s ({samples_per_second:.1} samples/s, \
                         {:.3e} words/s{generation}{kernel}){straggler}",
                        samples_per_second * words as f64
                    ),
                    None => println!(
                        "  shard {shard}: {seconds:.2}s \
                         ({samples_per_second:.1} samples/s{generation}{kernel}){straggler}"
                    ),
                }
            }
            Some(seconds) => {
                println!("  shard {shard}: {seconds:.2}s{generation}{kernel}{straggler}");
            }
            None => println!("  shard {shard}: no timing recorded{generation}{kernel}"),
        }
    }
    if !recorded.is_empty() {
        let total: f64 = recorded.iter().sum();
        print!(
            "  total {total:.2}s across {} timed shard(s), slowest {:.2}s",
            recorded.len(),
            recorded.iter().cloned().fold(0.0, f64::max),
        );
        // Aggregate throughput uses the driver's wall clock, not the sum of
        // per-shard clocks: shards run concurrently, so dividing by the sum
        // understates what the campaign actually delivered per second of
        // real time. (On a resumed run the wall clock covers only the work
        // this invocation performed.)
        let wall = campaign_started.elapsed().as_secs_f64();
        if timed_samples > 0 && wall > 0.0 {
            let samples_per_second = timed_samples as f64 / wall;
            match words_per_sample {
                Some(words) => print!(
                    " ({samples_per_second:.1} samples/s, {:.3e} words/s aggregate \
                     over {wall:.2}s driver wall clock)",
                    samples_per_second * words as f64
                ),
                None => print!(
                    " ({samples_per_second:.1} samples/s aggregate \
                     over {wall:.2}s driver wall clock)"
                ),
            }
        }
        println!();
    }

    let merged = ShardState::merge(states)?;
    if merged.spec != spec {
        return Err("merged shard set belongs to a different campaign configuration".into());
    }
    // The merge aggregated every shard's metrics (clocks and counter
    // snapshots sum; the kernel identity was validated consistent), so the
    // cross-shard report comes straight off the merged state.
    options.write_metrics(&merged.metrics)?;
    let panels = merged.into_panels(&figure.panel_labels(&spec))?;
    let rendered = figure.render(&spec, options.parallelism(), panels)?;

    print!("{}", rendered.report);
    if options.json_path.is_some() {
        options.write_json(&rendered.document)?;
    }
    Ok(())
}
