//! Regenerates Fig. 9 (extension): data-dependent fault sensitivity —
//! memory-MSE statistics for every protection scheme across memory
//! technologies, stored data images and fault-kind laws.
//!
//! One row per `(backend, image, kind law, scheme)`: faults are applied
//! *relative to the stored word* of the selected
//! [`faultmit_memsim::image::ImageSpec`], so stuck-at faults that agree
//! with the data are silent and the asymmetric decay laws of the DRAM/MLC
//! backends differentiate what the memory stores.
//!
//! ```text
//! fig9_data_sensitivity [--backend sram|dram|mlc] [--image <spec>]
//!     [--kind-law flip|stuck-at|stuck-at:P] [--samples N] [--threads N]
//!     [--full] [--json out.json]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("fig9_data_sensitivity")
}
