//! Fig. 4 — worst-case error magnitude per faulty bit position for every
//! FM-LUT width, for a 32-bit 2's-complement word.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry `fig4`;
//! the same campaign runs sharded via `campaign_run --figure fig4`.
//!
//! ```text
//! cargo run -p faultmit-bench --bin fig4_error_magnitude [-- --json results/fig4.json]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("fig4")
}
