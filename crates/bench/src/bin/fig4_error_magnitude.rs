//! Fig. 4 — worst-case error magnitude per faulty bit position for every
//! FM-LUT width, for a 32-bit 2's-complement word.
//!
//! ```text
//! cargo run -p faultmit-bench --bin fig4_error_magnitude [-- --json results/fig4.json]
//! ```

use faultmit_analysis::report::Table;
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_core::error_magnitude::error_magnitude_profile;
use faultmit_core::SegmentGeometry;
use std::collections::BTreeMap;

#[derive(Debug)]
struct Fig4Series {
    /// Series label ("no-correction" or "nFM=k").
    label: String,
    /// log2(error magnitude) per faulty bit position 0..31.
    log2_error_by_bit: Vec<u32>,
}

impl ToJson for Fig4Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("label", self.label.to_json()),
            ("log2_error_by_bit", self.log2_error_by_bit.to_json()),
        ])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let word_bits = 32usize;

    let mut series = vec![Fig4Series {
        label: "no-correction".to_owned(),
        log2_error_by_bit: error_magnitude_profile(word_bits, None),
    }];
    for n_fm in 1..=5usize {
        let geometry = SegmentGeometry::new(word_bits, n_fm)?;
        series.push(Fig4Series {
            label: format!("nFM={n_fm}"),
            log2_error_by_bit: error_magnitude_profile(word_bits, Some(geometry)),
        });
    }

    let mut headers = vec!["faulty bit".to_owned()];
    headers.extend(series.iter().map(|s| s.label.clone()));
    let mut table = Table::new(
        "Fig. 4 — log2(error magnitude) per faulty bit position (32-bit word)",
        headers,
    );
    for bit in 0..word_bits {
        let mut row = vec![bit.to_string()];
        for s in &series {
            row.push(s.log2_error_by_bit[bit].to_string());
        }
        table.add_row(row);
    }
    println!("{table}");

    // Summary: the worst-case bound per configuration (2^(S-1)).
    let mut bounds = BTreeMap::new();
    for n_fm in 1..=5usize {
        let geometry = SegmentGeometry::new(word_bits, n_fm)?;
        bounds.insert(format!("nFM={n_fm}"), geometry.max_error_magnitude());
    }
    println!("worst-case error magnitude bound per configuration:");
    for (label, bound) in &bounds {
        println!("  {label}: {bound} (= 2^(S-1))");
    }
    println!("  no-correction: {} (= 2^(W-1))", 1u64 << (word_bits - 1));

    options.write_json(&series)?;
    Ok(())
}
