//! Fig. 5 — CDF of the memory MSE for a 16 kB memory with P_cell = 5·10⁻⁶,
//! under no protection, bit-shuffling with n_FM = 1..5, and H(22,16) P-ECC.
//!
//! The whole catalogue runs through one paired `sim::Campaign` pass: every
//! scheme is scored on identical dies, fanned out over worker threads
//! (`--threads N`; the default uses every CPU, results are identical either
//! way). The default configuration uses a reduced Monte-Carlo budget; pass
//! `--full` for a paper-scale campaign (much slower).
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig5_mse_cdf [-- --full --json results/fig5.json]
//! ```

use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_core::Scheme;
use faultmit_memsim::{FaultBackend, MemoryConfig};

#[derive(Debug)]
struct Fig5Series {
    scheme: String,
    /// `(mse, P(MSE <= mse))` points of the CDF on a log grid.
    cdf: Vec<(f64, f64)>,
    /// MSE needed to reach 99.9999 % yield (the paper's example target),
    /// if reachable with the simulated failure-count coverage.
    mse_at_six_nines_yield: Option<f64>,
    /// Yield at the paper's example constraint MSE < 10⁶.
    yield_at_mse_1e6: f64,
}

impl ToJson for Fig5Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("cdf", self.cdf.to_json()),
            (
                "mse_at_six_nines_yield",
                self.mse_at_six_nines_yield.to_json(),
            ),
            ("yield_at_mse_1e6", self.yield_at_mse_1e6.to_json()),
        ])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();

    // The paper evaluates a 16 KB memory at P_cell = 5e-6 over failure counts
    // 1..150 with 1e7 MC runs. The default here keeps the same memory and
    // P_cell but a smaller per-count sample budget. `--backend dram|mlc`
    // re-runs the identical campaign against another technology's fault
    // structure at the same fault density.
    let (default_samples, max_failures) = if options.full_scale {
        (500, 150)
    } else {
        (60, 24)
    };
    let samples_per_count = options.samples_or(default_samples);
    let backend = options.backend_at_p_cell(MemoryConfig::paper_16kb(), 5e-6)?;
    let config = MonteCarloConfig::for_backend(backend)
        .with_samples_per_count(samples_per_count)
        .with_max_failures(max_failures)
        .with_parallelism(options.parallelism());
    let engine = MonteCarloEngine::new(config);

    println!(
        "Fig. 5 campaign: 16KB memory, backend {} ({}), P_cell = {:.0e}, \
         failure counts 1..={max_failures}, {samples_per_count} maps per count",
        backend.name(),
        engine.config().operating_point().label(),
        engine.config().p_cell()
    );

    let schemes = Scheme::fig5_catalogue();
    let results = engine.run_catalogue(&schemes, 0xF165)?;

    let mut table = Table::new(
        "Fig. 5 — MSE that must be tolerated per yield target, and yield at MSE < 1e6",
        vec![
            "scheme".into(),
            "MSE @ 99% yield".into(),
            "MSE @ 99.99% yield".into(),
            "MSE @ 99.9999% yield".into(),
            "yield @ MSE<1e6".into(),
            "yield @ MSE<1e6 (faulty dies)".into(),
        ],
    );

    let mut series = Vec::new();
    for result in &results {
        let fmt = |target: f64| {
            result
                .mse_for_yield(target)
                .map_or_else(|| "unreachable".to_owned(), format_sci)
        };
        // The paper's Fig. 5 CDF is built from dies with at least one failure
        // (Eq. (5) sums from n = 1), so also report the yield conditioned on
        // faulty dies.
        let zero_mass = result.yield_model.zero_failure_yield();
        let conditional = if zero_mass < 1.0 {
            ((result.yield_at_mse(1e6) - zero_mass) / (1.0 - zero_mass)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        table.add_row(vec![
            result.scheme_name.clone(),
            fmt(0.99),
            fmt(0.9999),
            fmt(0.999_999),
            format_percent(result.yield_at_mse(1e6)),
            format_percent(conditional),
        ]);

        let grid = result.cdf.log_grid(40).unwrap_or_default();
        series.push(Fig5Series {
            scheme: result.scheme_name.clone(),
            cdf: result.cdf.evaluate_at(&grid),
            mse_at_six_nines_yield: result.mse_for_yield(0.999_999),
            yield_at_mse_1e6: result.yield_at_mse(1e6),
        });
    }
    println!("{table}");

    // Headline claim: ≥30x MSE reduction at equal yield even for nFM=1.
    let unprotected = results
        .iter()
        .find(|r| r.scheme_name == "no-correction")
        .expect("catalogue contains the unprotected scheme");
    let shuffle1 = results
        .iter()
        .find(|r| r.scheme_name == "bit-shuffle nFM=1")
        .expect("catalogue contains nFM=1");
    if let (Some(u), Some(s)) = (
        unprotected.mse_for_yield(0.99),
        shuffle1.mse_for_yield(0.99),
    ) {
        println!(
            "MSE reduction at 99% yield, nFM=1 vs no-correction: {:.0}x (paper: >= 30x)",
            u / s.max(f64::MIN_POSITIVE)
        );
    }

    options.write_json(&series)?;
    Ok(())
}
