//! Fig. 5 — CDF of the memory MSE for a 16 kB memory with P_cell = 5·10⁻⁶,
//! under no protection, bit-shuffling with n_FM = 1..5, and H(22,16) P-ECC.
//!
//! The whole catalogue runs through one paired `sim::Campaign` pass: every
//! scheme is scored on identical dies, fanned out over worker threads
//! (`--threads N`; the default uses every CPU, results are identical either
//! way). The default configuration uses a reduced Monte-Carlo budget; pass
//! `--full` for a paper-scale campaign (much slower).
//!
//! The campaign definition and JSON rendering live in
//! `faultmit_bench::figures`, shared with the `campaign_shard` /
//! `campaign_merge` pair — a K-shard run merged in shard order reproduces
//! this binary's `--json` output byte for byte.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig5_mse_cdf [-- --full --json results/fig5.json]
//! ```

use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_bench::figures::{fig5_series, Fig5Campaign, FigureKind, FigureSpec};
use faultmit_bench::RunOptions;
use faultmit_memsim::FaultBackend;
use faultmit_sim::ShardSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();

    // The paper evaluates a 16 KB memory at P_cell = 5e-6 over failure counts
    // 1..150 with 1e7 MC runs. The default here keeps the same memory and
    // P_cell but a smaller per-count sample budget. `--backend dram|mlc`
    // re-runs the identical campaign against another technology's fault
    // structure at the same fault density.
    let spec = FigureSpec::from_options(FigureKind::Fig5, &options);
    let campaign = Fig5Campaign::from_spec(&spec, options.parallelism())?;

    println!(
        "Fig. 5 campaign: 16KB memory, backend {} ({}), P_cell = {:.0e}, \
         failure counts 1..={}, {} maps per count",
        campaign.engine.config().backend().name(),
        campaign.engine.config().operating_point().label(),
        campaign.engine.config().p_cell(),
        campaign.max_failures,
        spec.samples_per_count,
    );

    // Monolithic execution is the 0/1 shard of the sharded path.
    let state = campaign.run_shard(ShardSpec::solo())?;
    let results = campaign.results(state)?;

    let mut table = Table::new(
        "Fig. 5 — MSE that must be tolerated per yield target, and yield at MSE < 1e6",
        vec![
            "scheme".into(),
            "MSE @ 99% yield".into(),
            "MSE @ 99.99% yield".into(),
            "MSE @ 99.9999% yield".into(),
            "yield @ MSE<1e6".into(),
            "yield @ MSE<1e6 (faulty dies)".into(),
        ],
    );

    for result in &results {
        let fmt = |target: f64| {
            result
                .mse_for_yield(target)
                .map_or_else(|| "unreachable".to_owned(), format_sci)
        };
        // The paper's Fig. 5 CDF is built from dies with at least one failure
        // (Eq. (5) sums from n = 1), so also report the yield conditioned on
        // faulty dies.
        let zero_mass = result.yield_model.zero_failure_yield();
        let conditional = if zero_mass < 1.0 {
            ((result.yield_at_mse(1e6) - zero_mass) / (1.0 - zero_mass)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        table.add_row(vec![
            result.scheme_name.clone(),
            fmt(0.99),
            fmt(0.9999),
            fmt(0.999_999),
            format_percent(result.yield_at_mse(1e6)),
            format_percent(conditional),
        ]);
    }
    println!("{table}");

    // Headline claim: ≥30x MSE reduction at equal yield even for nFM=1.
    let unprotected = results
        .iter()
        .find(|r| r.scheme_name == "no-correction")
        .expect("catalogue contains the unprotected scheme");
    let shuffle1 = results
        .iter()
        .find(|r| r.scheme_name == "bit-shuffle nFM=1")
        .expect("catalogue contains nFM=1");
    if let (Some(u), Some(s)) = (
        unprotected.mse_for_yield(0.99),
        shuffle1.mse_for_yield(0.99),
    ) {
        println!(
            "MSE reduction at 99% yield, nFM=1 vs no-correction: {:.0}x (paper: >= 30x)",
            u / s.max(f64::MIN_POSITIVE)
        );
    }

    options.write_json(&fig5_series(&results))?;
    Ok(())
}
