//! Fig. 5 — CDF of the memory MSE for a 16 kB memory with P_cell = 5·10⁻⁶,
//! under no protection, bit-shuffling with n_FM = 1..5, and H(22,16) P-ECC.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry `fig5`:
//! the campaign definition and JSON rendering are shared with
//! `campaign_shard` / `campaign_merge` / `campaign_run`, so a K-shard run
//! merged in shard order reproduces this binary's `--json` output byte for
//! byte. `--backend dram|mlc` re-runs the identical campaign against
//! another technology's fault structure at the same fault density;
//! `--threads N` pins the pipeline worker count (results are identical at
//! any count); `--full` runs the paper-scale budget.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig5_mse_cdf [-- --full --json results/fig5.json]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("fig5")
}
