//! Fig. 7 — CDF of the application quality metric for the three data-mining
//! benchmarks under memory failures (16 kB memory, P_cell = 10⁻³), for no
//! protection, H(22,16) P-ECC, bit-shuffling with n_FM = 1 and 2, and the
//! H(39,32) SECDED reference.
//!
//! Pass a benchmark name (`elasticnet`, `pca`, `knn`) to run a single panel;
//! the default runs all three. `--full` uses a paper-scale Monte-Carlo
//! budget.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry `fig7`:
//! the campaign definition and JSON rendering are shared with
//! `campaign_shard` / `campaign_merge` / `campaign_run`, so a K-shard run
//! merged in shard order reproduces this binary's `--json` output byte for
//! byte.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig7_quality -- elasticnet
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("fig7")
}
