//! Fig. 7 — CDF of the application quality metric for the three data-mining
//! benchmarks under memory failures (16 kB memory, P_cell = 10⁻³), for no
//! protection, H(22,16) P-ECC, bit-shuffling with n_FM = 1 and 2, and the
//! H(39,32) SECDED reference.
//!
//! Pass a benchmark name (`elasticnet`, `pca`, `knn`) to run a single panel;
//! the default runs all three. `--full` uses a paper-scale Monte-Carlo budget.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig7_quality -- elasticnet
//! ```

use faultmit_analysis::report::{format_percent, Table};
use faultmit_apps::{Benchmark, QualityEvaluator};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_core::Scheme;

#[derive(Debug)]
struct Fig7Series {
    benchmark: String,
    scheme: String,
    baseline_quality: f64,
    /// `(normalised quality, P(Q <= q))` CDF points.
    cdf: Vec<(f64, f64)>,
    /// Fraction of dies achieving at least 95 % / 99 % of the baseline.
    yield_at_95pct: f64,
    yield_at_99pct: f64,
}

impl ToJson for Fig7Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("benchmark", self.benchmark.to_json()),
            ("scheme", self.scheme.to_json()),
            ("baseline_quality", self.baseline_quality.to_json()),
            ("cdf", self.cdf.to_json()),
            ("yield_at_95pct", self.yield_at_95pct.to_json()),
            ("yield_at_99pct", self.yield_at_99pct.to_json()),
        ])
    }
}

fn selected_benchmarks(options: &RunOptions) -> Vec<Benchmark> {
    if options.positional.is_empty() {
        return Benchmark::ALL.to_vec();
    }
    options
        .positional
        .iter()
        .filter_map(|name| match name.to_ascii_lowercase().as_str() {
            "elasticnet" | "wine" => Some(Benchmark::Elasticnet),
            "pca" | "madelon" => Some(Benchmark::Pca),
            "knn" | "har" | "activity" => Some(Benchmark::Knn),
            other => {
                eprintln!("unknown benchmark '{other}', expected elasticnet|pca|knn");
                None
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let benchmarks = selected_benchmarks(&options);

    // The paper: 16 KB memory, P_cell = 1e-3, 500 MC fault maps per failure
    // count, N_max covering 99 % of dies. The default here is a reduced but
    // shape-preserving budget over a smaller memory bank; in both cases the
    // failure counts swept cover 99 % of the die population for the chosen
    // memory size so the Pr(N = n) weighting stays meaningful.
    let p_cell = 1e-3;
    let (samples, memory_rows, default_samples_per_count) = if options.full_scale {
        (1280usize, 4096usize, 20usize)
    } else {
        (200, 512, 4)
    };
    let samples_per_count = options.samples_or(default_samples_per_count);
    // The `--backend` axis swaps the fault technology at the same density
    // (the default reproduces the paper's SRAM model bit-for-bit).
    let backend =
        options.backend_at_p_cell(faultmit_memsim::MemoryConfig::new(memory_rows, 32)?, p_cell)?;
    let max_failures = faultmit_memsim::FaultBackend::failure_distribution(&backend)?.n_max(0.99);
    if options.backend_kind() != faultmit_memsim::BackendKind::Sram {
        println!(
            "note: the paper's multi-fault-word discard is a bounded redraw; the {} backend's \
             structured fault placement exhausts it at higher fault counts, so multi-fault words \
             survive and H(39,32) SECDED is NOT an error-free reference here — that degradation \
             is the technology effect under study.",
            faultmit_memsim::FaultBackend::name(&backend)
        );
    }

    let schemes = [
        Scheme::unprotected32(),
        Scheme::pecc32(),
        Scheme::shuffle32(1)?,
        Scheme::shuffle32(2)?,
        Scheme::secded32(),
    ];

    let mut all_series = Vec::new();
    for benchmark in benchmarks {
        let evaluator = QualityEvaluator::builder(benchmark)
            .samples(samples)
            .memory_rows(memory_rows)
            .parallelism(options.parallelism())
            .build()?;
        let baseline = evaluator.baseline_quality()?;
        println!(
            "\nFig. 7 ({}) — {} on {}, fault-free {} = {:.4}, backend {}, P_cell = {p_cell:.0e}",
            match benchmark {
                Benchmark::Elasticnet => "a",
                Benchmark::Pca => "b",
                Benchmark::Knn => "c",
            },
            benchmark.name(),
            benchmark.dataset_name(),
            benchmark.metric_name(),
            baseline,
            faultmit_memsim::FaultBackend::name(&backend),
        );

        let mut table = Table::new(
            format!("normalised {} per scheme", benchmark.metric_name()),
            vec![
                "scheme".into(),
                "median quality".into(),
                "1st percentile".into(),
                "yield @ >=95% of baseline".into(),
            ],
        );

        // One paired pipeline pass: every scheme trains on the same dies,
        // fanned out over worker threads. Fault maps with more than one
        // fault per word are discarded (bounded redraw) following the
        // paper's protocol; under the iid SRAM backend that makes the
        // H(39,32) SECDED reference error-free, while structured backends
        // exhaust the redraw budget (see the note printed above).
        let results = evaluator.quality_cdfs_paired_on(
            &schemes,
            &backend,
            max_failures,
            samples_per_count,
            0xF167,
            true,
        )?;
        for result in results {
            let median = result.cdf.quantile(0.5);
            let p01 = result.cdf.quantile(0.01);
            let yield95 = result.yield_at_min_quality(0.95);
            table.add_row(vec![
                result.scheme_name.clone(),
                format!("{median:.4}"),
                format!("{p01:.4}"),
                format_percent(yield95),
            ]);

            let grid: Vec<f64> = (0..=50).map(|i| i as f64 / 50.0).collect();
            all_series.push(Fig7Series {
                benchmark: benchmark.name().to_owned(),
                scheme: result.scheme_name.clone(),
                baseline_quality: result.baseline_quality,
                cdf: result.cdf.evaluate_at(&grid),
                yield_at_95pct: yield95,
                yield_at_99pct: result.yield_at_min_quality(0.99),
            });
        }
        println!("{table}");
    }

    options.write_json(&all_series)?;
    Ok(())
}
