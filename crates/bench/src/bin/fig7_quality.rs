//! Fig. 7 — CDF of the application quality metric for the three data-mining
//! benchmarks under memory failures (16 kB memory, P_cell = 10⁻³), for no
//! protection, H(22,16) P-ECC, bit-shuffling with n_FM = 1 and 2, and the
//! H(39,32) SECDED reference.
//!
//! Pass a benchmark name (`elasticnet`, `pca`, `knn`) to run a single panel;
//! the default runs all three. `--full` uses a paper-scale Monte-Carlo budget.
//!
//! The campaign definition and JSON rendering live in
//! `faultmit_bench::figures`, shared with the `campaign_shard` /
//! `campaign_merge` pair — a K-shard run merged in shard order reproduces
//! this binary's `--json` output byte for byte.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig7_quality -- elasticnet
//! ```

use faultmit_analysis::report::{format_percent, Table};
use faultmit_apps::Benchmark;
use faultmit_bench::figures::{fig7_series, Fig7Campaign, Fig7Series, FigureKind, FigureSpec};
use faultmit_bench::RunOptions;
use faultmit_memsim::{BackendKind, FaultBackend};
use faultmit_sim::ShardSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();

    // The paper: 16 KB memory, P_cell = 1e-3, 500 MC fault maps per failure
    // count, N_max covering 99 % of dies. The default here is a reduced but
    // shape-preserving budget over a smaller memory bank; in both cases the
    // failure counts swept cover 99 % of the die population for the chosen
    // memory size so the Pr(N = n) weighting stays meaningful. The
    // `--backend` axis swaps the fault technology at the same density (the
    // default reproduces the paper's SRAM model bit-for-bit).
    let spec = FigureSpec::from_options(FigureKind::Fig7, &options);
    let campaign = Fig7Campaign::from_spec(&spec, options.parallelism())?;
    if options.backend_kind() != BackendKind::Sram {
        println!(
            "note: the paper's multi-fault-word discard is a bounded redraw; the {} backend's \
             structured fault placement exhausts it at higher fault counts, so multi-fault words \
             survive and H(39,32) SECDED is NOT an error-free reference here — that degradation \
             is the technology effect under study.",
            campaign.backend.name()
        );
    }

    // One paired pipeline pass per benchmark: every scheme trains on the
    // same dies, fanned out over worker threads. Monolithic execution is the
    // 0/1 shard of the sharded path.
    let states = campaign.run_shard(ShardSpec::solo())?;

    let mut all_series: Vec<Fig7Series> = Vec::new();
    for (panel, (&benchmark, state)) in spec.benchmarks.iter().zip(states).enumerate() {
        let results = campaign.results(panel, state)?;
        let baseline = results
            .first()
            .map(|r| r.baseline_quality)
            .unwrap_or_default();
        println!(
            "\nFig. 7 ({}) — {} on {}, fault-free {} = {:.4}, backend {}, P_cell = {:.0e}",
            match benchmark {
                Benchmark::Elasticnet => "a",
                Benchmark::Pca => "b",
                Benchmark::Knn => "c",
            },
            benchmark.name(),
            benchmark.dataset_name(),
            benchmark.metric_name(),
            baseline,
            campaign.backend.name(),
            campaign.backend.p_cell(),
        );

        let mut table = Table::new(
            format!("normalised {} per scheme", benchmark.metric_name()),
            vec![
                "scheme".into(),
                "median quality".into(),
                "1st percentile".into(),
                "yield @ >=95% of baseline".into(),
            ],
        );
        for result in &results {
            table.add_row(vec![
                result.scheme_name.clone(),
                format!("{:.4}", result.cdf.quantile(0.5)),
                format!("{:.4}", result.cdf.quantile(0.01)),
                format_percent(result.yield_at_min_quality(0.95)),
            ]);
        }
        println!("{table}");
        all_series.extend(fig7_series(benchmark, &results));
    }

    options.write_json(&all_series)?;
    Ok(())
}
