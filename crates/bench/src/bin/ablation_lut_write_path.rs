//! Ablation — FM-LUT realisation and the bit-shuffling write path.
//!
//! Fig. 6 counts only the read path and charges the FM-LUT as extra array
//! columns; the paper notes (§5.1) that a CAM or register-file LUT would cut
//! the write-latency penalty of the read-before-write lookup. This ablation
//! prints the write-path energy/delay of every scheme for the three LUT
//! realisations, alongside the ECC encoders, plus the redundancy baseline's
//! spare-row demand for context.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry
//! `ablation_lut_write_path`.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin ablation_lut_write_path
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("ablation_lut_write_path")
}
