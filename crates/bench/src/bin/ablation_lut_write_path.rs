//! Ablation — FM-LUT realisation and the bit-shuffling write path.
//!
//! Fig. 6 counts only the read path and charges the FM-LUT as extra array
//! columns; the paper notes (§5.1) that a CAM or register-file LUT would cut
//! the write-latency penalty of the read-before-write lookup. This ablation
//! prints the write-path energy/delay of every scheme for the three LUT
//! realisations, alongside the ECC encoders, plus the redundancy baseline's
//! spare-row demand for context.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin ablation_lut_write_path
//! ```

use faultmit_analysis::report::Table;
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_hwmodel::{LutImplementation, OverheadModel, ProtectionBlock};
use faultmit_memsim::{repair_yield, DieSampler, MemoryConfig, StreamSeeder};

#[derive(Debug)]
struct WritePathRow {
    scheme: String,
    lut: String,
    energy_fj: f64,
    delay_ps: f64,
}

impl ToJson for WritePathRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("lut", self.lut.to_json()),
            ("energy_fj", self.energy_fj.to_json()),
            ("delay_ps", self.delay_ps.to_json()),
        ])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let model = OverheadModel::paper_16kb();

    let luts = [
        LutImplementation::ArrayColumns,
        LutImplementation::RegisterFile,
        LutImplementation::Cam { entries: 64 },
    ];
    let blocks = [
        ProtectionBlock::Secded,
        ProtectionBlock::PriorityEcc,
        ProtectionBlock::BitShuffle { n_fm: 1 },
        ProtectionBlock::BitShuffle { n_fm: 5 },
    ];

    let mut table = Table::new(
        "Ablation — write-path cost per scheme and FM-LUT realisation (16KB memory)",
        vec![
            "scheme".into(),
            "LUT realisation".into(),
            "write energy (fJ)".into(),
            "write delay (ps)".into(),
        ],
    );
    let mut series = Vec::new();
    for block in blocks {
        for lut in luts {
            // The LUT choice only matters for bit-shuffling; print ECC rows
            // once with a dash.
            let is_shuffle = matches!(block, ProtectionBlock::BitShuffle { .. });
            if !is_shuffle && lut != LutImplementation::ArrayColumns {
                continue;
            }
            let cost = model.write_path_cost(block, lut);
            let lut_label = if is_shuffle {
                lut.label()
            } else {
                "-".to_owned()
            };
            table.add_row(vec![
                block.label(),
                lut_label.clone(),
                format!("{:.1}", cost.energy_fj),
                format!("{:.1}", cost.delay_ps),
            ]);
            series.push(WritePathRow {
                scheme: block.label(),
                lut: lut_label,
                energy_fj: cost.energy_fj,
                delay_ps: cost.delay_ps,
            });
        }
    }
    println!("{table}");

    // Context: the redundancy baseline's spare-row demand at the same fault
    // densities where bit-shuffling still delivers bounded errors.
    let mut redundancy = Table::new(
        "Context — spare rows needed by classical row redundancy (95% repair yield, 1024-row bank)",
        vec!["P_cell".into(), "spare rows for 95% yield".into()],
    );
    let config = MemoryConfig::new(1024, 32)?;
    for &p_cell in &[1e-5, 1e-4, 1e-3, 5e-3] {
        let sampler = DieSampler::new(config, p_cell)?;
        // Pipeline-style sampling: each die owns an index-derived RNG
        // stream, so the population is independent of iteration order.
        let seeder = StreamSeeder::new(0x5BA9);
        let dies = (0..200)
            .map(|i| sampler.sample_die(&mut seeder.rng_for_sample(i)))
            .collect::<Result<Vec<_>, _>>()?;
        let spares = (0..=1024)
            .find(|&s| repair_yield(&dies, s) >= 0.95)
            .unwrap_or(1024);
        redundancy.add_row(vec![format!("{p_cell:.0e}"), spares.to_string()]);
    }
    println!("{redundancy}");
    println!(
        "Row redundancy must provision one spare per faulty row, so its cost explodes with P_cell; \
bit-shuffling keeps a constant nFM-column overhead regardless of the fault count."
    );

    options.write_json(&series)?;
    Ok(())
}
