//! Table 1 — evaluation applications, datasets and quality metrics, together
//! with the measured fault-free quality of each benchmark in this
//! reproduction.
//!
//! ```text
//! cargo run -p faultmit-bench --bin table1_applications
//! ```

use faultmit_analysis::report::Table;
use faultmit_apps::{Benchmark, QualityEvaluator};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;

#[derive(Debug)]
struct Table1Row {
    class: String,
    algorithm: String,
    dataset: String,
    metric: String,
    fault_free_quality: f64,
}

impl ToJson for Table1Row {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("class", self.class.to_json()),
            ("algorithm", self.algorithm.to_json()),
            ("dataset", self.dataset.to_json()),
            ("metric", self.metric.to_json()),
            ("fault_free_quality", self.fault_free_quality.to_json()),
        ])
    }
}

fn class_of(benchmark: Benchmark) -> &'static str {
    match benchmark {
        Benchmark::Elasticnet => "Regression",
        Benchmark::Pca => "Dimensionality Reduction",
        Benchmark::Knn => "Classification",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let samples = if options.full_scale { 1280 } else { 320 };

    let mut table = Table::new(
        "Table 1 — evaluation applications and datasets",
        vec![
            "class".into(),
            "algorithm".into(),
            "dataset".into(),
            "metric".into(),
            "fault-free quality".into(),
        ],
    );

    let mut rows = Vec::new();
    for benchmark in Benchmark::ALL {
        let evaluator = QualityEvaluator::builder(benchmark)
            .samples(samples)
            .memory_rows(1024)
            .build()?;
        let baseline = evaluator.baseline_quality()?;
        table.add_row(vec![
            class_of(benchmark).to_owned(),
            benchmark.name().to_owned(),
            benchmark.dataset_name().to_owned(),
            benchmark.metric_name().to_owned(),
            format!("{baseline:.4}"),
        ]);
        rows.push(Table1Row {
            class: class_of(benchmark).to_owned(),
            algorithm: benchmark.name().to_owned(),
            dataset: benchmark.dataset_name().to_owned(),
            metric: benchmark.metric_name().to_owned(),
            fault_free_quality: baseline,
        });
    }
    println!("{table}");

    options.write_json(&rows)?;
    Ok(())
}
