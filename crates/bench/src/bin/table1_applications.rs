//! Table 1 — evaluation applications, datasets and quality metrics, together
//! with the measured fault-free quality of each benchmark in this
//! reproduction.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry `table1`.
//! `--samples N` overrides the evaluation sample budget (default 320,
//! `--full` uses 1280).
//!
//! ```text
//! cargo run -p faultmit-bench --bin table1_applications
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("table1")
}
