//! Fig. 8 (extension) — memory-MSE statistics for every protection scheme
//! across memory technologies and operating points: SRAM under voltage
//! scaling, DRAM/eDRAM under refresh-interval scaling, and MLC NVM under
//! level-spacing scaling. Each cell of the scheme × backend ×
//! operating-point matrix comes from one paired `sim::Campaign` pass
//! (identical dies for all schemes, bit-identical at any worker count).
//!
//! `--backend sram|dram|mlc` restricts the sweep to one technology;
//! `--samples N` sets the fault maps per failure count (default 40, CI
//! smoke uses 5); `--full` runs a paper-scale budget.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig8_backend_matrix \
//!     [-- --backend dram --samples 40 --json results/fig8.json]
//! ```

use faultmit_analysis::report::{format_percent, format_sci, Table};
use faultmit_analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_core::Scheme;
use faultmit_memsim::{
    Backend, BackendKind, CellFailureModel, DramRetentionBackend, FaultBackend, MemoryConfig,
    MlcNvmBackend, SramVddBackend,
};

#[derive(Debug)]
struct MatrixRow {
    backend: &'static str,
    operating_point: String,
    knob: f64,
    p_cell: f64,
    scheme: String,
    mean_mse: f64,
    mse_at_99pct_yield: Option<f64>,
    yield_at_mse_1e6: f64,
}

impl ToJson for MatrixRow {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("backend", self.backend.to_json()),
            ("operating_point", self.operating_point.to_json()),
            ("knob", self.knob.to_json()),
            ("p_cell", self.p_cell.to_json()),
            ("scheme", self.scheme.to_json()),
            ("mean_mse", self.mean_mse.to_json()),
            ("mse_at_99pct_yield", self.mse_at_99pct_yield.to_json()),
            ("yield_at_mse_1e6", self.yield_at_mse_1e6.to_json()),
        ])
    }
}

/// Three operating points per technology, ordered from conservative to
/// aggressive (rising fault density).
fn operating_points(
    kind: BackendKind,
    memory: MemoryConfig,
) -> Result<Vec<Backend>, Box<dyn std::error::Error>> {
    Ok(match kind {
        BackendKind::Sram => {
            let model = CellFailureModel::default_28nm();
            [0.85, 0.78, 0.70]
                .iter()
                .map(|&vdd| Ok(Backend::Sram(SramVddBackend::at_vdd(memory, model, vdd)?)))
                .collect::<Result<_, Box<dyn std::error::Error>>>()?
        }
        BackendKind::Dram => [32.0, 64.0, 128.0]
            .iter()
            .map(|&t_ref| {
                Ok(Backend::Dram(DramRetentionBackend::new(
                    memory, t_ref, 45.0,
                )?))
            })
            .collect::<Result<_, Box<dyn std::error::Error>>>()?,
        BackendKind::Mlc => [14.0, 12.0, 10.0]
            .iter()
            .map(|&spacing| Ok(Backend::Mlc(MlcNvmBackend::new(memory, spacing, 86_400.0)?)))
            .collect::<Result<_, Box<dyn std::error::Error>>>()?,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let memory = MemoryConfig::paper_16kb();

    let (default_samples, failure_cap) = if options.full_scale {
        (500, 150)
    } else {
        (40, 100)
    };
    let samples_per_count = options.samples_or(default_samples);

    let kinds: Vec<BackendKind> = match options.backend {
        Some(kind) => vec![kind],
        None => BackendKind::ALL.to_vec(),
    };

    let mut schemes = Scheme::fig5_catalogue();
    schemes.push(Scheme::secded32());

    println!(
        "Fig. 8 matrix: 16KB memory, {} scheme(s) x {} backend(s) x 3 operating points, \
         {samples_per_count} maps per failure count (counts up to the 99th percentile, \
         capped at {failure_cap})",
        schemes.len(),
        kinds.len()
    );

    let mut table = Table::new(
        "Fig. 8 — scheme x backend x operating point (memory MSE)",
        vec![
            "backend".into(),
            "operating point".into(),
            "P_cell".into(),
            "scheme".into(),
            "mean MSE".into(),
            "MSE @ 99% yield".into(),
            "yield @ MSE<1e6".into(),
        ],
    );

    let mut rows = Vec::new();
    for kind in kinds {
        for backend in operating_points(kind, memory)? {
            let op = backend.operating_point();
            let p_cell = backend.p_cell();
            // Simulate up to the 99th-percentile failure count of this
            // operating point, bounded so aggressive corners stay cheap.
            let max_failures = backend
                .failure_distribution()?
                .n_max(0.99)
                .clamp(1, failure_cap);
            let engine = MonteCarloEngine::new(
                MonteCarloConfig::for_backend(backend)
                    .with_samples_per_count(samples_per_count)
                    .with_max_failures(max_failures)
                    .with_parallelism(options.parallelism()),
            );
            let results = engine.run_catalogue(&schemes, 0xF168)?;
            for result in &results {
                let mean = result.cdf.mean().unwrap_or(0.0);
                let at_yield = result.mse_for_yield(0.99);
                let yield_1e6 = result.yield_at_mse(1e6);
                table.add_row(vec![
                    kind.name().to_owned(),
                    op.label(),
                    format_sci(p_cell),
                    result.scheme_name.clone(),
                    format_sci(mean),
                    at_yield.map_or_else(|| "unreachable".to_owned(), format_sci),
                    format_percent(yield_1e6),
                ]);
                rows.push(MatrixRow {
                    backend: kind.name(),
                    operating_point: op.label(),
                    knob: op.primary_value(),
                    p_cell,
                    scheme: result.scheme_name.clone(),
                    mean_mse: mean,
                    mse_at_99pct_yield: at_yield,
                    yield_at_mse_1e6: yield_1e6,
                });
            }
        }
    }
    println!("{table}");

    options.write_json(&rows)?;
    Ok(())
}
