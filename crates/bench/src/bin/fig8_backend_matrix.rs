//! Fig. 8 (extension) — memory-MSE statistics for every protection scheme
//! across memory technologies and operating points: SRAM under voltage
//! scaling, DRAM/eDRAM under refresh-interval scaling, and MLC NVM under
//! level-spacing scaling.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry `fig8`:
//! each cell of the scheme × backend × operating-point matrix is one
//! campaign panel, so the whole matrix shards across processes via
//! `campaign_run --figure fig8 --shards K --jobs J`.
//!
//! `--backend sram|dram|mlc` restricts the sweep to one technology;
//! `--samples N` sets the fault maps per failure count (default 40, CI
//! smoke uses 5); `--full` runs a paper-scale budget.
//!
//! ```text
//! cargo run --release -p faultmit-bench --bin fig8_backend_matrix \
//!     [-- --backend dram --samples 40 --json results/fig8.json]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("fig8")
}
