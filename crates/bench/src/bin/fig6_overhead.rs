//! Fig. 6 — read power, read delay and area overhead of bit-shuffling
//! (n_FM = 1..5) and H(22,16) P-ECC, relative to the H(39,32) SECDED
//! baseline, from the analytical 28 nm cost model.
//!
//! ```text
//! cargo run -p faultmit-bench --bin fig6_overhead [-- --json results/fig6.json]
//! ```

use faultmit_analysis::report::Table;
use faultmit_bench::json::{JsonValue, ToJson};
use faultmit_bench::RunOptions;
use faultmit_hwmodel::{OverheadModel, ProtectionBlock};

#[derive(Debug)]
struct Fig6Entry {
    scheme: String,
    relative_read_power: f64,
    relative_read_delay: f64,
    relative_area: f64,
    absolute_energy_fj: f64,
    absolute_delay_ps: f64,
    absolute_area_um2: f64,
}

impl ToJson for Fig6Entry {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("scheme", self.scheme.to_json()),
            ("relative_read_power", self.relative_read_power.to_json()),
            ("relative_read_delay", self.relative_read_delay.to_json()),
            ("relative_area", self.relative_area.to_json()),
            ("absolute_energy_fj", self.absolute_energy_fj.to_json()),
            ("absolute_delay_ps", self.absolute_delay_ps.to_json()),
            ("absolute_area_um2", self.absolute_area_um2.to_json()),
        ])
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    let model = OverheadModel::paper_16kb();

    let mut table = Table::new(
        "Fig. 6 — overhead relative to H(39,32) SECDED (analytical 28nm model, 16KB memory)",
        vec![
            "scheme".into(),
            "read power".into(),
            "read delay".into(),
            "area".into(),
        ],
    );

    let mut entries = Vec::new();
    for row in model.fig6_comparison() {
        table.add_row(vec![
            row.label.clone(),
            format!("{:.2}", row.relative.energy),
            format!("{:.2}", row.relative.delay),
            format!("{:.2}", row.relative.area),
        ]);
        entries.push(Fig6Entry {
            scheme: row.label.clone(),
            relative_read_power: row.relative.energy,
            relative_read_delay: row.relative.delay,
            relative_area: row.relative.area,
            absolute_energy_fj: row.cost.energy_fj,
            absolute_delay_ps: row.cost.delay_ps,
            absolute_area_um2: row.cost.area_um2,
        });
    }
    println!("{table}");

    let savings = model.best_shuffle_savings();
    println!(
        "best bit-shuffling savings vs SECDED: {:.0}% read power, {:.0}% read delay, {:.0}% area",
        savings.energy * 100.0,
        savings.delay * 100.0,
        savings.area * 100.0
    );
    println!("paper reports up to 83% read power, 77% read delay and 89% area savings");

    let pecc = model.read_path_cost(ProtectionBlock::PriorityEcc);
    let shuffle1 = model.read_path_cost(ProtectionBlock::BitShuffle { n_fm: 1 });
    println!(
        "bit-shuffle nFM=1 vs P-ECC: {:.0}% read power, {:.0}% read delay, {:.0}% area reduction (paper: up to 59% / 64% / 57%)",
        (1.0 - shuffle1.energy_fj / pecc.energy_fj) * 100.0,
        (1.0 - shuffle1.delay_ps / pecc.delay_ps) * 100.0,
        (1.0 - shuffle1.area_um2 / pecc.area_um2) * 100.0,
    );

    options.write_json(&entries)?;
    Ok(())
}
