//! Fig. 6 — read power, read delay and area overhead of bit-shuffling
//! (n_FM = 1..5) and H(22,16) P-ECC, relative to the H(39,32) SECDED
//! baseline, from the analytical 28 nm cost model.
//!
//! A thin shim over the `faultmit_bench::figures` registry entry `fig6`.
//!
//! ```text
//! cargo run -p faultmit-bench --bin fig6_overhead [-- --json results/fig6.json]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    faultmit_bench::figures::run_monolithic("fig6")
}
