//! Evaluate one shard of any registered figure campaign and write its
//! panel state.
//!
//! A K-shard campaign splits a figure's plan into K disjoint chunk ranges
//! (`faultmit_sim::ShardSpec`); each invocation of this binary evaluates
//! one range — on any host, since per-sample RNG streams derive from
//! `(seed, global sample index)` alone — and serialises its panel states to
//! `--out`. `campaign_merge` (or the `campaign_run` driver) folds the K
//! files in shard order and renders figure JSON **byte-identical** to the
//! monolithic figure binary. The figure is selected with `--figure <name>`
//! (or the historical first positional argument) from the
//! `faultmit_bench::figures` registry — every campaign binary is covered,
//! not just fig5/fig7.
//!
//! A completed shard file is a checkpoint: when `--out` already holds the
//! state of exactly this campaign slice, the run is skipped, so re-running
//! a partially finished campaign recomputes only the missing shards.
//!
//! ```text
//! campaign_shard --figure fig5 --backend dram --shard 0/2 --out shards/fig5-dram-0of2.json
//! campaign_shard --figure fig8 --samples 5 --shard 1/4 --out shards/fig8-1of4.json
//! campaign_shard fig7 elasticnet --shard 1/3 --samples 4 --out shards/fig7-el-1of3.json
//! ```

use faultmit_bench::figures::{check_identity_flags, check_tuning_flags, find_figure};
use faultmit_bench::metrics::ShardMetrics;
use faultmit_bench::shard::{ShardPanelState, ShardState};
use faultmit_bench::RunOptions;
use faultmit_obs as obs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut options = RunOptions::from_args();
    let name =
        match options.figure.clone() {
            Some(name) => name,
            None if !options.positional.is_empty() => options.positional.remove(0),
            None => return Err(
                "usage: campaign_shard --figure <name> [benchmarks...] --shard I/K --out <path>\
                        \n       [--backend sram|dram|mlc] [--samples N] [--threads N] [--full]\
                        \n(the figure may also be the first positional argument)"
                    .into(),
            ),
        };
    let figure = find_figure(&name)?;
    // An unparseable --shard must not silently fall back to the monolithic
    // 0/1 shard: that would recompute the whole campaign and write
    // solo-coverage state under a shard file's name.
    if let Some(error) = &options.shard_error {
        return Err(error.clone().into());
    }
    // Same policy for the campaign-identity flags: a typo in --image or
    // --kind-law must not silently evaluate a different campaign and write
    // its state under this shard file's name.
    if !options.spec_flag_errors.is_empty() {
        return Err(options.spec_flag_errors.join("; ").into());
    }
    // And for the tuning flags: a typo'd --auto-threshold must not silently
    // record default-threshold telemetry under this shard file's name.
    if !options.tuning_flag_errors.is_empty() {
        return Err(options.tuning_flag_errors.join("; ").into());
    }
    check_tuning_flags(&options)?;
    let shard = options.shard_or_solo();
    let out_path = options
        .json_path
        .clone()
        .ok_or("campaign_shard requires --out <path> for the shard-state file")?;

    let spec = figure.spec(&options);
    // An --image/--kind-law the figure would normalise away must be fatal
    // for the same reason: it would evaluate a different campaign.
    check_identity_flags(&spec, &options)?;

    // Resumability: a completed shard file for exactly this campaign slice
    // is a checkpoint — skip the work.
    if let Ok(existing) = std::fs::read_to_string(&out_path) {
        match ShardState::parse(&existing) {
            Ok(state) if state.matches(&spec, shard) => {
                println!(
                    "shard {shard} of {} already complete at {}; skipping",
                    figure.name(),
                    out_path.display()
                );
                return Ok(());
            }
            Ok(_) => eprintln!(
                "{} holds a different campaign's state; recomputing",
                out_path.display()
            ),
            Err(e) => eprintln!(
                "{} is not a valid shard file ({e}); recomputing",
                out_path.display()
            ),
        }
    }

    let labels = figure.panel_labels(&spec);
    println!(
        "{} shard {shard}: {} panel(s) {labels:?}",
        figure.name(),
        labels.len()
    );
    // Shard checkpoints always carry a metrics snapshot: the recorder is
    // ambient (thread-local, re-installed on workers), the hot paths pay a
    // handful of u64 adds per chunk, and the driver/merge side can then
    // aggregate cross-shard metrics without any flag forwarding. Counter
    // sums are order-independent, so the snapshot is bit-identical at any
    // worker count.
    let recorder = std::sync::Arc::new(obs::Recorder::new());
    let guard = obs::install(&recorder);
    let started = std::time::Instant::now();
    let run = figure.run_shard_tuned(&spec, options.tuning(), options.parallelism(), shard)?;
    let elapsed_seconds = started.elapsed().as_secs_f64();
    drop(guard);
    let panels = run.panels;
    if panels.len() != labels.len() {
        return Err(format!(
            "{} produced {} panel states for {} panels",
            figure.name(),
            panels.len(),
            labels.len()
        )
        .into());
    }

    let kernel = figure.resolved_kernel_tuned(&spec, options.tuning());
    let state = ShardState {
        spec,
        shard,
        panels: labels
            .into_iter()
            .zip(panels)
            .map(|(label, state)| ShardPanelState { label, state })
            .collect(),
        // Wall-clock telemetry for the campaign driver's timing summary
        // (and for sizing future splits to the slowest host), plus which
        // evaluation kernel produced the state so throughput numbers stay
        // comparable across checkpoints — `--kernel auto` records the
        // density-resolved choice (`auto:<kernel>`), next to the
        // --auto-threshold override that resolution used (the merge
        // validates it across the set). Figures without a kernel axis
        // (deterministic tables, app-quality campaigns) record none, and
        // only engines that time generation record generation seconds.
        // The snapshot carries the typed counters/histograms/stage clocks
        // this shard's pipeline recorded.
        metrics: ShardMetrics {
            elapsed_seconds: Some(elapsed_seconds),
            kernel,
            generation_seconds: run.generation_seconds,
            auto_threshold: options.auto_threshold,
            snapshot: Some(recorder.snapshot()),
        },
    };
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, state.to_json().to_pretty_string())?;
    println!("wrote shard state to {}", out_path.display());
    Ok(())
}
