//! Evaluate one shard of a figure campaign and write its accumulator state.
//!
//! A K-shard campaign splits a figure's Monte-Carlo plan into K disjoint
//! chunk ranges (`faultmit_sim::ShardSpec`); each invocation of this binary
//! evaluates one range — on any host, since per-sample RNG streams derive
//! from `(seed, global sample index)` alone — and serialises its accumulator
//! state to `--out`. `campaign_merge` folds the K files in shard order and
//! renders figure JSON **byte-identical** to the monolithic figure binary.
//!
//! A completed shard file is a checkpoint: when `--out` already holds the
//! state of exactly this campaign slice, the run is skipped, so re-running
//! a partially finished campaign recomputes only the missing shards.
//!
//! ```text
//! campaign_shard fig5 --backend dram --shard 0/2 --out shards/fig5-dram-0of2.json
//! campaign_shard fig7 elasticnet --shard 1/3 --samples 4 --out shards/fig7-el-1of3.json
//! ```

use faultmit_bench::figures::{Fig5Campaign, Fig7Campaign, FigureKind, FigureSpec};
use faultmit_bench::shard::{ShardCampaignState, ShardState};
use faultmit_bench::RunOptions;
use faultmit_core::MitigationScheme;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut options = RunOptions::from_args();
    if options.positional.is_empty() {
        return Err(
            "usage: campaign_shard <fig5|fig7> [benchmarks...] --shard I/K --out <path>\
                    \n       [--backend sram|dram|mlc] [--samples N] [--threads N] [--full]"
                .into(),
        );
    }
    let figure: FigureKind = options.positional.remove(0).parse()?;
    // An unparseable --shard must not silently fall back to the monolithic
    // 0/1 shard: that would recompute the whole campaign and write
    // solo-coverage state under a shard file's name.
    if let Some(error) = &options.shard_error {
        return Err(error.clone().into());
    }
    let shard = options.shard_or_solo();
    let out_path = options
        .json_path
        .clone()
        .ok_or("campaign_shard requires --out <path> for the shard-state file")?;

    let spec = FigureSpec::from_options(figure, &options);

    // Resumability: a completed shard file for exactly this campaign slice
    // is a checkpoint — skip the work.
    if let Ok(existing) = std::fs::read_to_string(&out_path) {
        match ShardState::parse(&existing) {
            Ok(state) if state.matches(&spec, shard) => {
                println!(
                    "shard {shard} of {figure} ({}) already complete at {}; skipping",
                    spec.backend.name(),
                    out_path.display()
                );
                return Ok(());
            }
            Ok(_) => eprintln!(
                "{} holds a different campaign's state; recomputing",
                out_path.display()
            ),
            Err(e) => eprintln!(
                "{} is not a valid shard file ({e}); recomputing",
                out_path.display()
            ),
        }
    }

    let campaigns = match figure {
        FigureKind::Fig5 => {
            let campaign = Fig5Campaign::from_spec(&spec, options.parallelism())?;
            let samples = campaign
                .engine
                .config()
                .samples_per_count()
                .saturating_mul(campaign.max_failures as usize);
            println!(
                "{figure} shard {shard}: backend {}, {} global samples, catalogue of {}",
                spec.backend.name(),
                samples,
                campaign.schemes.len()
            );
            vec![ShardCampaignState {
                label: "fig5".to_owned(),
                scheme_names: campaign
                    .schemes
                    .iter()
                    .map(MitigationScheme::name)
                    .collect(),
                accumulator: campaign.run_shard(shard)?,
            }]
        }
        FigureKind::Fig7 => {
            let campaign = Fig7Campaign::from_spec(&spec, options.parallelism())?;
            println!(
                "{figure} shard {shard}: backend {}, benchmarks {:?}, catalogue of {}",
                spec.backend.name(),
                spec.campaign_labels(),
                campaign.schemes.len()
            );
            let scheme_names: Vec<String> = campaign
                .schemes
                .iter()
                .map(MitigationScheme::name)
                .collect();
            spec.campaign_labels()
                .into_iter()
                .zip(campaign.run_shard(shard)?)
                .map(|(label, accumulator)| ShardCampaignState {
                    label,
                    scheme_names: scheme_names.clone(),
                    accumulator,
                })
                .collect()
        }
    };

    let state = ShardState {
        spec,
        shard,
        campaigns,
    };
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out_path, state.to_json().to_pretty_string())?;
    println!("wrote shard state to {}", out_path.display());
    Ok(())
}
