//! Merge campaign shard files and render the figure JSON.
//!
//! Reads the K shard-state files of a campaign (in any order), validates
//! that they form a complete K-shard set of one registered figure's
//! campaign — reporting **every** missing, duplicated or mismatched shard
//! index (and every unreadable file) in one error instead of failing on the
//! first — folds their panel states **in shard order**, and renders the
//! figure series with the exact code path of the monolithic figure binary:
//! the output at `--out` is **byte-identical** to that binary's `--json`
//! output at the same flags, for every figure of the
//! `faultmit_bench::figures` registry.
//!
//! ```text
//! campaign_merge shards/fig8-0of4.json shards/fig8-1of4.json \
//!     shards/fig8-2of4.json shards/fig8-3of4.json --out results/fig8.json
//! ```

use faultmit_bench::figures::find_figure;
use faultmit_bench::shard::{load_shard_files, ShardState};
use faultmit_bench::RunOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    if options.positional.is_empty() {
        return Err(
            "usage: campaign_merge <shard-file>... --out <figure-json-path> [--threads N]\
                    \n       [--metrics <metrics-json-path>]"
                .into(),
        );
    }

    let shards = load_shard_files(&options.positional)?;
    for (path, state) in options.positional.iter().zip(&shards) {
        println!(
            "read shard {} of {} from {path}",
            state.shard, state.spec.figure
        );
    }

    let merged = ShardState::merge(shards)?;
    let spec = merged.spec.clone();
    let figure = find_figure(&spec.figure)?;
    println!(
        "merged {} shard(s) of {} ({} samples/count)",
        options.positional.len(),
        spec.figure,
        spec.samples_per_count
    );

    // The merge aggregated the shard set's telemetry (clocks and counter
    // snapshots sum across shards); --metrics writes the cross-shard report.
    options.write_metrics(&merged.metrics)?;

    // Render through the figure's own reduction path: a merged state is
    // bit-identical to the monolithic accumulator, so the series — and its
    // serialised bytes — match the monolithic binary's --json output.
    let panels = merged.into_panels(&figure.panel_labels(&spec))?;
    let rendered = figure.render(&spec, options.parallelism(), panels)?;

    if options.json_path.is_some() {
        options.write_json(&rendered.document)?;
    } else {
        println!("{}", rendered.document.to_pretty_string());
    }
    Ok(())
}
