//! Merge campaign shard files and render the figure JSON.
//!
//! Reads the K shard-state files of a campaign (in any order), validates
//! that they form a complete K-shard set of one campaign configuration,
//! folds their accumulators **in shard order**, and renders the figure
//! series with the exact code path of the monolithic figure binary — so the
//! output at `--out` is **byte-identical** to `fig5_mse_cdf --json` /
//! `fig7_quality --json` run monolithically with the same flags.
//!
//! ```text
//! campaign_merge shards/fig5-dram-0of2.json shards/fig5-dram-1of2.json \
//!     --out results/fig5-dram.json
//! ```

use faultmit_bench::figures::{fig5_series, fig7_series, Fig5Campaign, Fig7Campaign, FigureKind};
use faultmit_bench::json::ToJson;
use faultmit_bench::shard::ShardState;
use faultmit_bench::RunOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = RunOptions::from_args();
    if options.positional.is_empty() {
        return Err(
            "usage: campaign_merge <shard-file>... --out <figure-json-path> [--threads N]".into(),
        );
    }

    let mut shards = Vec::new();
    for path in &options.positional {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read shard file '{path}': {e}"))?;
        let state = ShardState::parse(&text).map_err(|e| format!("'{path}': {e}"))?;
        println!(
            "read shard {} of {} ({}) from {path}",
            state.shard,
            state.spec.figure,
            state.spec.backend.name()
        );
        shards.push(state);
    }

    let merged = ShardState::merge(shards)?;
    let spec = merged.spec.clone();
    println!(
        "merged {} shard(s) of {} ({}, {} samples/count)",
        options.positional.len(),
        spec.figure,
        spec.backend.name(),
        spec.samples_per_count
    );

    // Render through the figure's own reduction path: a merged state is
    // bit-identical to the monolithic accumulator, so the series — and its
    // serialised bytes — match the monolithic binary's --json output.
    let document = match spec.figure {
        FigureKind::Fig5 => {
            let campaign = Fig5Campaign::from_spec(&spec, options.parallelism())?;
            let state = merged
                .campaigns
                .into_iter()
                .next()
                .ok_or("fig5 shard state holds no campaign")?;
            let results = campaign.results(state.accumulator)?;
            fig5_series(&results).to_json()
        }
        FigureKind::Fig7 => {
            let campaign = Fig7Campaign::from_spec(&spec, options.parallelism())?;
            let mut all_series = Vec::new();
            for (panel, (&benchmark, state)) in
                spec.benchmarks.iter().zip(merged.campaigns).enumerate()
            {
                let results = campaign.results(panel, state.accumulator)?;
                all_series.extend(fig7_series(benchmark, &results));
            }
            all_series.to_json()
        }
    };

    if options.json_path.is_some() {
        options.write_json(&document)?;
    } else {
        println!("{}", document.to_pretty_string());
    }
    Ok(())
}
