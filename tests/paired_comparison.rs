//! Property tests of the pipeline's paired scheme comparison: on a *shared*
//! fault map, bit-shuffling's per-die MSE must never exceed the unprotected
//! scheme's MSE — for any memory geometry, any segment granularity and any
//! fault density. The guarantee is structural: `FmLut::choose_shift`
//! searches all `2^{n_FM}` candidate rotations and the identity rotation is
//! always among them, so the chosen rotation can only lower the summed
//! squared error magnitude.
//!
//! These properties are exactly what the paired pipeline makes testable:
//! with per-scheme resampling (the pre-pipeline engine) the comparison would
//! only hold in distribution, not per die.

use faultmit::analysis::memory_mse;
use faultmit::core::{Scheme, SegmentGeometry};
use faultmit::memsim::{Backend, BackendKind, MemoryConfig};
use faultmit::sim::{Campaign, CampaignConfig, CollectRecords, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random geometries: power-of-two word widths 8..=64, every legal `n_FM`.
fn random_geometry(rng: &mut StdRng) -> (MemoryConfig, SegmentGeometry) {
    let word_bits = 1usize << rng.gen_range(3u32..=6);
    let log2_w = word_bits.trailing_zeros() as usize;
    let n_fm = rng.gen_range(1usize..=log2_w);
    let rows = 1usize << rng.gen_range(4u32..=8);
    (
        MemoryConfig::new(rows, word_bits).unwrap(),
        SegmentGeometry::new(word_bits, n_fm).unwrap(),
    )
}

#[test]
fn shuffling_never_exceeds_unprotected_mse_on_shared_dies() {
    let mut rng = StdRng::seed_from_u64(0x9A12ED);
    for case in 0..40 {
        let (memory, geometry) = random_geometry(&mut rng);
        let samples_per_count = rng.gen_range(3usize..8);
        let max_failures = rng.gen_range(1u64..=(memory.total_cells() as u64 / 4).clamp(1, 24));

        let schemes = [
            Scheme::Unprotected {
                word_bits: memory.word_bits(),
            },
            Scheme::BitShuffle(geometry),
        ];
        let config = CampaignConfig::new(memory, 1e-3)
            .unwrap()
            .with_samples_per_count(samples_per_count)
            .with_max_failures(max_failures)
            .with_parallelism(Parallelism::threads(2));
        let records = Campaign::new(config)
            .run(&schemes, 0xBEEF ^ case, memory_mse, CollectRecords::new)
            .unwrap();

        assert!(!records.records.is_empty());
        for record in &records.records {
            let (unprotected, shuffled) = (record.metrics[0], record.metrics[1]);
            assert!(
                shuffled <= unprotected * (1.0 + 1e-12) + 1e-12,
                "case {case}: W={} nFM={} die {} with {} faults: \
                 shuffle MSE {shuffled} > unprotected {unprotected}",
                memory.word_bits(),
                geometry.n_fm(),
                record.sample_index,
                record.n_faults,
            );
        }
    }
}

#[test]
fn shuffling_never_exceeds_unprotected_mse_on_any_backend() {
    // The structural guarantee is backend-agnostic: whatever spatial law
    // placed the faults — iid SRAM flips, clustered DRAM retention bursts,
    // level-weighted MLC errors — `FmLut::choose_shift` includes the
    // identity rotation in its search, so on every shared die the shuffled
    // MSE is bounded by the unprotected MSE.
    let memory = MemoryConfig::new(256, 32).unwrap();
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 2e-3).unwrap();
        for n_fm in [1usize, 3, 5] {
            let schemes = [Scheme::unprotected32(), Scheme::shuffle32(n_fm).unwrap()];
            let config = CampaignConfig::for_backend(backend)
                .unwrap()
                .with_samples_per_count(6)
                .with_max_failures(16)
                .with_parallelism(Parallelism::threads(2));
            let records = Campaign::new(config)
                .run(
                    &schemes,
                    0xBAC2 + n_fm as u64,
                    memory_mse,
                    CollectRecords::new,
                )
                .unwrap();

            assert!(!records.records.is_empty(), "{kind}");
            for record in &records.records {
                let (unprotected, shuffled) = (record.metrics[0], record.metrics[1]);
                assert!(
                    shuffled <= unprotected * (1.0 + 1e-12) + 1e-12,
                    "{kind} nFM={n_fm}: die {} with {} faults: \
                     shuffle MSE {shuffled} > unprotected {unprotected}",
                    record.sample_index,
                    record.n_faults,
                );
            }
        }
    }
}

#[test]
fn finer_segments_never_lose_on_shared_single_fault_dies() {
    // For dies whose rows each hold at most one fault, the worst-case error
    // bound 2^(S-1) shrinks monotonically with n_FM; verify the realised
    // per-die MSE is monotone too when every scheme sees the same die.
    let schemes: Vec<Scheme> = (1..=5).map(|n| Scheme::shuffle32(n).unwrap()).collect();
    let config = CampaignConfig::new(MemoryConfig::new(512, 32).unwrap(), 1e-4)
        .unwrap()
        .with_samples_per_count(10)
        .with_max_failures(6)
        .with_map_policy(faultmit::sim::MapPolicy::SingleFaultPerRow { max_redraws: 1000 });
    let records = Campaign::new(config)
        .run(&schemes, 0x51CE, memory_mse, CollectRecords::new)
        .unwrap();

    for record in &records.records {
        for pair in record.metrics.windows(2) {
            assert!(
                pair[1] <= pair[0] * (1.0 + 1e-12) + 1e-12,
                "die {}: finer segments regressed ({:?})",
                record.sample_index,
                record.metrics,
            );
        }
    }
}
