//! Determinism regression tests of the parallel fault-injection pipeline:
//! the same campaign seed must produce **bit-identical** results whether the
//! campaign runs serially or on N worker threads, at any chunk size, across
//! every layer that feeds the figures (raw records, per-count CDFs, combined
//! `EmpiricalCdf`s, application quality).

use faultmit::analysis::{MonteCarloConfig, MonteCarloEngine};
use faultmit::apps::{Benchmark, QualityEvaluator};
use faultmit::core::Scheme;
use faultmit::memsim::{Backend, BackendKind, MemoryConfig};
use faultmit::sim::{Campaign, CampaignConfig, CollectRecords, Parallelism};

const SEED: u64 = 0xD373_1213;

fn engine(parallelism: Parallelism) -> MonteCarloEngine {
    let config = MonteCarloConfig::new(MemoryConfig::new(512, 32).unwrap(), 5e-4)
        .unwrap()
        .with_samples_per_count(20)
        .with_max_failures(12)
        .with_parallelism(parallelism);
    MonteCarloEngine::new(config)
}

#[test]
fn mse_campaign_is_bit_identical_serial_vs_threaded() {
    let schemes = Scheme::fig5_catalogue();
    let baseline = engine(Parallelism::Serial)
        .run_catalogue(&schemes, SEED)
        .unwrap();

    for workers in [2usize, 4, 8] {
        let threaded = engine(Parallelism::threads(workers))
            .run_catalogue(&schemes, SEED)
            .unwrap();
        for (a, b) in baseline.iter().zip(&threaded) {
            assert_eq!(a.scheme_name, b.scheme_name);
            // Bit-identical: every observation and every (order-sensitive)
            // floating-point weight sum matches exactly.
            assert_eq!(a.cdf, b.cdf, "{workers} workers: {}", a.scheme_name);
            assert_eq!(
                a.cdf.total_weight().to_bits(),
                b.cdf.total_weight().to_bits()
            );
            for (n, cdf_a) in a.yield_model.per_count_cdfs() {
                assert_eq!(cdf_a, &b.yield_model.per_count_cdfs()[n]);
            }
        }
    }
}

#[test]
fn raw_record_stream_is_independent_of_chunking_and_workers() {
    let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
    let base = CampaignConfig::new(MemoryConfig::new(256, 32).unwrap(), 1e-3)
        .unwrap()
        .with_samples_per_count(15)
        .with_max_failures(8);

    let reference = Campaign::new(base.with_parallelism(Parallelism::Serial))
        .run(
            &schemes,
            SEED,
            faultmit::analysis::memory_mse,
            CollectRecords::new,
        )
        .unwrap();

    for (workers, chunk_size) in [(2usize, 1usize), (3, 7), (8, 64), (4, 1000)] {
        let variant = Campaign::new(
            base.with_parallelism(Parallelism::threads(workers))
                .with_chunk_size(chunk_size),
        )
        .run(
            &schemes,
            SEED,
            faultmit::analysis::memory_mse,
            CollectRecords::new,
        )
        .unwrap();
        assert_eq!(
            reference, variant,
            "{workers} workers, chunk size {chunk_size}"
        );
    }
}

#[test]
fn different_seeds_produce_different_populations() {
    let scheme = [Scheme::unprotected32()];
    let config = CampaignConfig::new(MemoryConfig::new(256, 32).unwrap(), 1e-3)
        .unwrap()
        .with_samples_per_count(10)
        .with_max_failures(5);
    let a = Campaign::new(config)
        .run(
            &scheme,
            1,
            faultmit::analysis::memory_mse,
            CollectRecords::new,
        )
        .unwrap();
    let b = Campaign::new(config)
        .run(
            &scheme,
            2,
            faultmit::analysis::memory_mse,
            CollectRecords::new,
        )
        .unwrap();
    assert_ne!(a, b);
}

#[test]
fn every_backend_is_bit_identical_serial_vs_threaded_at_any_chunk_size() {
    // The backend-generic determinism gate: for SRAM voltage scaling, DRAM
    // retention (clustered maps) and MLC NVM (level-weighted maps) alike,
    // the same campaign seed must reproduce the exact record stream, CDFs
    // and weights regardless of worker count and chunking.
    let memory = MemoryConfig::new(512, 32).unwrap();
    let schemes = Scheme::fig5_catalogue();
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 5e-4).unwrap();
        let base = CampaignConfig::for_backend(backend)
            .unwrap()
            .with_samples_per_count(12)
            .with_max_failures(10);

        let reference = Campaign::new(base.with_parallelism(Parallelism::Serial))
            .run(
                &schemes,
                SEED,
                faultmit::analysis::memory_mse,
                CollectRecords::new,
            )
            .unwrap();
        assert_eq!(reference.records.len(), 120, "{kind}");

        for (workers, chunk_size) in [(2usize, 1usize), (4, 7), (8, 64)] {
            let variant = Campaign::new(
                base.with_parallelism(Parallelism::threads(workers))
                    .with_chunk_size(chunk_size),
            )
            .run(
                &schemes,
                SEED,
                faultmit::analysis::memory_mse,
                CollectRecords::new,
            )
            .unwrap();
            assert_eq!(
                reference, variant,
                "{kind}: {workers} workers, chunk size {chunk_size}"
            );
        }
    }
}

#[test]
fn backend_engine_cdfs_are_bit_identical_serial_vs_threaded() {
    // Same gate one layer up: the MSE-specialised engine's combined and
    // per-count CDFs, per backend.
    let memory = MemoryConfig::new(256, 32).unwrap();
    let schemes = [Scheme::unprotected32(), Scheme::shuffle32(2).unwrap()];
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
        let build = |parallelism| {
            MonteCarloEngine::new(
                MonteCarloConfig::for_backend(backend)
                    .with_samples_per_count(10)
                    .with_max_failures(8)
                    .with_parallelism(parallelism),
            )
        };
        let serial = build(Parallelism::Serial)
            .run_catalogue(&schemes, SEED)
            .unwrap();
        let threaded = build(Parallelism::threads(4))
            .run_catalogue(&schemes, SEED)
            .unwrap();
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.cdf, b.cdf, "{kind}: {}", a.scheme_name);
            assert_eq!(
                a.cdf.total_weight().to_bits(),
                b.cdf.total_weight().to_bits(),
                "{kind}"
            );
            for (n, cdf_a) in a.yield_model.per_count_cdfs() {
                assert_eq!(cdf_a, &b.yield_model.per_count_cdfs()[n], "{kind}: n={n}");
            }
        }
    }
}

#[test]
fn data_image_campaigns_are_bit_identical_serial_vs_threaded() {
    // The image axis joins the determinism gate: data-aware MSE campaigns
    // (stuck-at faults applied relative to the stored word) must reproduce
    // the exact CDFs and weights at any worker count, for every image kind.
    use faultmit::memsim::{FaultKindLaw, ImageSpec};
    let memory = MemoryConfig::new(256, 32).unwrap();
    let schemes = [Scheme::unprotected32(), Scheme::shuffle32(2).unwrap()];
    let backend = Backend::at_p_cell(BackendKind::Mlc, memory, 1e-3)
        .unwrap()
        .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 0.8,
        })
        .unwrap();
    for image in [
        ImageSpec::Zeros,
        ImageSpec::Ones,
        ImageSpec::UniformRandom { seed: 3 },
        ImageSpec::Sparse { seed: 3 },
    ] {
        let build = |parallelism| {
            MonteCarloEngine::new(
                MonteCarloConfig::for_backend(backend)
                    .with_samples_per_count(10)
                    .with_max_failures(8)
                    .with_image(image)
                    .with_parallelism(parallelism),
            )
        };
        let serial = build(Parallelism::Serial)
            .run_catalogue(&schemes, SEED)
            .unwrap();
        let threaded = build(Parallelism::threads(4))
            .run_catalogue(&schemes, SEED)
            .unwrap();
        for (a, b) in serial.iter().zip(&threaded) {
            assert_eq!(a.cdf, b.cdf, "{image}: {}", a.scheme_name);
            assert_eq!(
                a.cdf.total_weight().to_bits(),
                b.cdf.total_weight().to_bits(),
                "{image}"
            );
        }
    }
}

#[test]
fn application_quality_campaign_is_bit_identical_serial_vs_threaded() {
    // The slowest per-sample evaluator (model training) exercises the
    // fallible pipeline path end to end; keep the budget small.
    let build = |parallelism| {
        QualityEvaluator::builder(Benchmark::Elasticnet)
            .samples(96)
            .memory_rows(128)
            .parallelism(parallelism)
            .build()
            .unwrap()
    };
    let schemes = [Scheme::unprotected32(), Scheme::secded32()];
    let serial = build(Parallelism::Serial)
        .quality_cdfs_paired(&schemes, 1e-3, 5, 3, SEED, true)
        .unwrap();
    let threaded = build(Parallelism::threads(4))
        .quality_cdfs_paired(&schemes, 1e-3, 5, 3, SEED, true)
        .unwrap();
    for (a, b) in serial.iter().zip(&threaded) {
        assert_eq!(a.scheme_name, b.scheme_name);
        assert_eq!(a.baseline_quality.to_bits(), b.baseline_quality.to_bits());
        assert_eq!(a.cdf, b.cdf);
    }
}

#[test]
fn metrics_counter_snapshots_are_bit_identical_serial_vs_threaded() {
    // The observability gate: every deterministic counter (dies and faults
    // generated, kernel dispatches, observe rows, ECC decodes — everything
    // except the host-dependent realloc and wall-clock channels) must be
    // bit-identical whether the campaign runs serially or on N workers,
    // for every backend and evaluation kernel. Counter sums are
    // order-independent u64 adds, so worker scheduling cannot move them.
    use faultmit::obs;
    use faultmit::sim::KernelKind;
    let memory = MemoryConfig::new(256, 32).unwrap();
    let schemes = [Scheme::unprotected32(), Scheme::shuffle32(2).unwrap()];
    for kind in BackendKind::ALL {
        for kernel in [
            KernelKind::Scalar,
            KernelKind::Sparse,
            KernelKind::Bitsliced,
            KernelKind::Bitsliced256,
        ] {
            let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
            let run = |parallelism| {
                let recorder = std::sync::Arc::new(obs::Recorder::new());
                let guard = obs::install(&recorder);
                MonteCarloEngine::new(
                    MonteCarloConfig::for_backend(backend)
                        .with_samples_per_count(10)
                        .with_max_failures(8)
                        .with_kernel(kernel)
                        .with_parallelism(parallelism),
                )
                .run_catalogue(&schemes, SEED)
                .unwrap();
                drop(guard);
                recorder.snapshot()
            };
            let serial = run(Parallelism::Serial);
            assert!(
                serial.counter(obs::Counter::SamplesEvaluated) > 0,
                "{kind}/{kernel}: the pipeline must actually record samples"
            );
            for workers in [2usize, 4] {
                let threaded = run(Parallelism::threads(workers));
                assert_eq!(
                    serial.deterministic_counters(),
                    threaded.deterministic_counters(),
                    "{kind}/{kernel}: {workers} workers"
                );
                // Histogram buckets are order-independent sums too.
                assert_eq!(
                    serial.histograms, threaded.histograms,
                    "{kind}/{kernel}: {workers} workers"
                );
            }
        }
    }
}
