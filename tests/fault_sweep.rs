//! Failure-injection sweep across fault densities and fault kinds: the
//! quality ordering between protection schemes must hold from the
//! single-fault regime the paper analyses up to heavily degraded dies, and
//! for stuck-at as well as bit-flip cell behaviour.

use faultmit::analysis::memory_mse;
use faultmit::core::{MitigationScheme, Scheme, SegmentGeometry, ShuffledMemory};
use faultmit::memsim::montecarlo::FaultKindPolicy;
use faultmit::memsim::{FaultMapSampler, MemoryConfig, VddSweep};
use rand::rngs::StdRng;
use rand::SeedableRng;

const ROWS: usize = 256;

fn sampler(policy: FaultKindPolicy) -> FaultMapSampler {
    FaultMapSampler::with_policy(MemoryConfig::new(ROWS, 32).unwrap(), policy)
}

#[test]
fn mse_ordering_holds_across_fault_densities() {
    let mut rng = StdRng::seed_from_u64(101);
    let sampler = sampler(FaultKindPolicy::AlwaysFlip);
    for &n_faults in &[1usize, 4, 16, 64, 256, 1024] {
        let mut unprotected_sum = 0.0;
        let mut shuffle1_sum = 0.0;
        let mut shuffle5_sum = 0.0;
        let runs = 10;
        for _ in 0..runs {
            let faults = sampler.sample_with_count(&mut rng, n_faults).unwrap();
            unprotected_sum += memory_mse(&Scheme::unprotected32(), &faults);
            shuffle1_sum += memory_mse(&Scheme::shuffle32(1).unwrap(), &faults);
            shuffle5_sum += memory_mse(&Scheme::shuffle32(5).unwrap(), &faults);
        }
        // Finer segments are never worse, and both beat no protection at
        // every density. The advantage shrinks as rows accumulate several
        // faults (only one fault per row can be steered into the LSB
        // segment), so the strict orders-of-magnitude requirement applies
        // only to the low-density regime the paper operates in.
        assert!(
            shuffle5_sum <= shuffle1_sum + 1e-9,
            "{n_faults} faults: nFM=5 {shuffle5_sum} vs nFM=1 {shuffle1_sum}"
        );
        assert!(
            shuffle1_sum < unprotected_sum / 2.0,
            "{n_faults} faults: nFM=1 {shuffle1_sum} vs unprotected {unprotected_sum}"
        );
        // At 16+ faults over 256 rows the occasional double-fault row (which
        // nFM=1 cannot fully protect: one fault stays in the high segment)
        // dominates the sum, so the strict factor applies below that density.
        if n_faults <= 4 {
            assert!(
                shuffle1_sum < unprotected_sum / 100.0,
                "{n_faults} faults: nFM=1 {shuffle1_sum} vs unprotected {unprotected_sum}"
            );
        }
    }
}

#[test]
fn stuck_at_fault_populations_are_also_mitigated() {
    // The paper injects bit-flips; real cells are often stuck-at. The bound
    // still holds because a silent stuck-at fault causes no error at all and
    // an active one behaves like a flip.
    let mut rng = StdRng::seed_from_u64(202);
    for policy in [FaultKindPolicy::RandomStuckAt, FaultKindPolicy::Mixed] {
        let sampler = sampler(policy);
        let faults = sampler.sample_with_count(&mut rng, 128).unwrap();
        for n_fm in [1usize, 3, 5] {
            let geometry = SegmentGeometry::new(32, n_fm).unwrap();
            let mut memory = ShuffledMemory::from_fault_map(geometry, faults.clone()).unwrap();
            let bound = geometry.max_error_magnitude();
            for row in 0..ROWS {
                let value = (row as u64).wrapping_mul(0xDEAD_BEEF) & 0xFFFF_FFFF;
                memory.write(row, value).unwrap();
                let read = memory.read(row).unwrap();
                if memory.array().faults().faulty_columns(row).len() <= 1 {
                    assert!(
                        read.abs_diff(value) <= bound,
                        "policy {policy:?}, nFM={n_fm}, row {row}"
                    );
                }
            }
        }
    }
}

#[test]
fn scheme_error_bound_survives_saturated_fault_rows() {
    // Even when *every* row has a fault (far beyond the paper's operating
    // point), the per-row error of the single-bit-segment scheme stays at 1
    // for single-fault rows — the protection degrades gracefully rather than
    // collapsing.
    let config = MemoryConfig::new(ROWS, 32).unwrap();
    let faults = faultmit::memsim::FaultMap::from_faults(
        config,
        (0..ROWS).map(|r| faultmit::memsim::Fault::bit_flip(r, (r * 13) % 32)),
    )
    .unwrap();
    let scheme = Scheme::shuffle32(5).unwrap();
    for row in (0..ROWS).step_by(17) {
        let observed = scheme.observe(&faults, row, 0x7FFF_FFFF);
        assert!(observed.value.abs_diff(0x7FFF_FFFF) <= 1);
    }
    assert!(memory_mse(&scheme, &faults) <= 1.0 + 1e-9);
}

#[test]
fn voltage_sweep_keeps_protected_mse_bounded_per_fault() {
    // Along a V_DD sweep of one die, the shuffled memory's MSE grows at most
    // linearly with the number of faults (bounded contribution per fault),
    // while the unprotected MSE can jump by orders of magnitude.
    let mut rng = StdRng::seed_from_u64(303);
    let model = faultmit::memsim::FailureModelBuilder::new()
        .anchor(1.0, 1e-5)
        .anchor(0.6, 1e-2)
        .build()
        .unwrap();
    let die = faultmit::memsim::VoltageScaledDie::manufacture(
        MemoryConfig::new(1024, 32).unwrap(),
        model,
        &mut rng,
    );
    let scheme = Scheme::shuffle32(5).unwrap();
    for vdd in VddSweep::new(0.6, 1.0, 5).unwrap().voltages() {
        let faults = die.fault_map_at(vdd).unwrap();
        let mse = memory_mse(&scheme, &faults);
        // The per-fault bound of 4^0 = 1 applies when each row has at most
        // one fault; at the lowest voltages some rows accumulate several
        // faults, where the scheme still beats no protection but cannot
        // bound every fault.
        if faults.max_faults_per_row() <= 1 {
            assert!(
                mse <= faults.fault_count() as f64 / 1024.0 + 1e-9,
                "V_DD {vdd}: MSE {mse} with {} faults",
                faults.fault_count()
            );
        } else {
            let unprotected = memory_mse(&Scheme::unprotected32(), &faults);
            assert!(
                mse < unprotected,
                "V_DD {vdd}: shuffled MSE {mse} vs unprotected {unprotected}"
            );
        }
    }
}
