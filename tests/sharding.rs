//! Shard-merge bit-identity gates for the distributed campaign path: for
//! every fault backend, a campaign split into K shards and merged in shard
//! order must be **bit-identical** to the monolithic run — raw record
//! streams, per-count CDF sketches and their order-sensitive floating-point
//! weight sums alike — at any worker count. Monolithic execution must
//! itself be the 0/1 shard, not a separate code path.

use faultmit::analysis::{CatalogueAccumulator, MonteCarloConfig, MonteCarloEngine};
use faultmit::core::Scheme;
use faultmit::memsim::{Backend, BackendKind, MemoryConfig};
use faultmit::sim::{
    Accumulator, Campaign, CampaignConfig, CollectRecords, Parallelism, ShardSpec,
};

const SEED: u64 = 0x5AAD_0003;
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

#[test]
fn every_backend_shards_bit_identically_at_every_split() {
    // The raw-record layer: the shard union must reproduce the exact global
    // sample stream for iid (SRAM), clustered (DRAM) and level-weighted
    // (MLC) fault processes alike.
    let memory = MemoryConfig::new(512, 32).unwrap();
    let schemes = [Scheme::unprotected32(), Scheme::shuffle32(3).unwrap()];
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 5e-4).unwrap();
        let campaign = Campaign::new(
            CampaignConfig::for_backend(backend)
                .unwrap()
                .with_samples_per_count(12)
                .with_max_failures(10)
                .with_chunk_size(5),
        );
        let monolithic = campaign
            .run(
                &schemes,
                SEED,
                faultmit::analysis::memory_mse,
                CollectRecords::new,
            )
            .unwrap();
        assert_eq!(monolithic.records.len(), 120, "{kind}");

        for shard_count in SHARD_COUNTS {
            let mut merged = CollectRecords::new();
            for index in 0..shard_count {
                let shard = ShardSpec::new(index, shard_count).unwrap();
                merged.merge(
                    campaign
                        .run_shard(
                            &schemes,
                            SEED,
                            shard,
                            faultmit::analysis::memory_mse,
                            CollectRecords::new,
                        )
                        .unwrap(),
                );
            }
            assert_eq!(merged, monolithic, "{kind}: {shard_count} shards diverge");
        }
    }
}

#[test]
fn engine_shard_states_merge_bit_identically_for_every_backend() {
    // One layer up: the MSE engine's accumulator states, CDFs and
    // order-sensitive weight sums, per backend and per shard split.
    let memory = MemoryConfig::new(256, 32).unwrap();
    let schemes = [Scheme::unprotected32(), Scheme::secded32()];
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
        let engine = MonteCarloEngine::new(
            MonteCarloConfig::for_backend(backend)
                .with_samples_per_count(10)
                .with_max_failures(8),
        );
        let monolithic = engine.run_catalogue(&schemes, SEED).unwrap();

        for shard_count in SHARD_COUNTS {
            let mut merged = CatalogueAccumulator::new(schemes.len());
            for index in 0..shard_count {
                let shard = ShardSpec::new(index, shard_count).unwrap();
                merged.merge(engine.run_catalogue_shard(&schemes, SEED, shard).unwrap());
            }
            let results = engine.results_from_state(&schemes, merged).unwrap();
            for (a, b) in monolithic.iter().zip(&results) {
                assert_eq!(a.scheme_name, b.scheme_name);
                assert_eq!(
                    a.cdf, b.cdf,
                    "{kind}: {shard_count} shards: {}",
                    a.scheme_name
                );
                assert_eq!(
                    a.cdf.total_weight().to_bits(),
                    b.cdf.total_weight().to_bits(),
                    "{kind}: {shard_count} shards"
                );
                for (n, cdf_a) in a.yield_model.per_count_cdfs() {
                    assert_eq!(
                        cdf_a,
                        &b.yield_model.per_count_cdfs()[n],
                        "{kind}: {shard_count} shards, n = {n}"
                    );
                }
            }
        }
    }
}

#[test]
fn data_image_campaigns_shard_bit_identically() {
    // The image axis joins the shard-merge gate: for every image kind, a
    // data-aware stuck-at campaign split into K shards and merged in shard
    // order must reproduce the monolithic accumulation exactly.
    use faultmit::memsim::{FaultKindLaw, ImageSpec};
    let memory = MemoryConfig::new(256, 32).unwrap();
    let schemes = [Scheme::unprotected32(), Scheme::secded32()];
    let backend = Backend::at_p_cell(BackendKind::Dram, memory, 1e-3)
        .unwrap()
        .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 0.9,
        })
        .unwrap();
    for image in [
        ImageSpec::Zeros,
        ImageSpec::Ones,
        ImageSpec::UniformRandom { seed: 7 },
        ImageSpec::Sparse { seed: 7 },
    ] {
        let engine = MonteCarloEngine::new(
            MonteCarloConfig::for_backend(backend)
                .with_samples_per_count(9)
                .with_max_failures(7)
                .with_image(image),
        );
        let monolithic = engine.run_catalogue(&schemes, SEED).unwrap();
        for shard_count in SHARD_COUNTS {
            let mut merged = CatalogueAccumulator::new(schemes.len());
            for index in 0..shard_count {
                let shard = ShardSpec::new(index, shard_count).unwrap();
                merged.merge(engine.run_catalogue_shard(&schemes, SEED, shard).unwrap());
            }
            let results = engine.results_from_state(&schemes, merged).unwrap();
            for (a, b) in monolithic.iter().zip(&results) {
                assert_eq!(
                    a.cdf, b.cdf,
                    "{image}: {shard_count} shards: {}",
                    a.scheme_name
                );
                assert_eq!(
                    a.cdf.total_weight().to_bits(),
                    b.cdf.total_weight().to_bits(),
                    "{image}: {shard_count} shards"
                );
            }
        }
    }
}

#[test]
fn shards_are_worker_count_independent() {
    // Shard boundaries come from the global plan, so a shard computed
    // serially must equal the same shard computed on 4 workers.
    let memory = MemoryConfig::new(256, 32).unwrap();
    let schemes = [Scheme::unprotected32()];
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
        let base = CampaignConfig::for_backend(backend)
            .unwrap()
            .with_samples_per_count(9)
            .with_max_failures(6)
            .with_chunk_size(3);
        let shard = ShardSpec::new(1, 3).unwrap();
        let serial = Campaign::new(base.with_parallelism(Parallelism::Serial))
            .run_shard(
                &schemes,
                SEED,
                shard,
                faultmit::analysis::memory_mse,
                CollectRecords::new,
            )
            .unwrap();
        let threaded = Campaign::new(base.with_parallelism(Parallelism::threads(4)))
            .run_shard(
                &schemes,
                SEED,
                shard,
                faultmit::analysis::memory_mse,
                CollectRecords::new,
            )
            .unwrap();
        assert_eq!(serial, threaded, "{kind}");
        // The shard evaluated exactly its own sample range.
        let range = Campaign::new(base).shard_sample_range(shard).unwrap();
        let indices: Vec<u64> = serial.records.iter().map(|r| r.sample_index).collect();
        assert_eq!(indices, range.collect::<Vec<u64>>(), "{kind}");
    }
}
