//! The data-dependence property gates of the data-image subsystem: faults
//! applied *relative to the stored word* must be silent exactly when they
//! agree with the data, the all-zeros image must stay bit-identical to the
//! legacy evaluation path, and asymmetric stuck-at campaigns must show a
//! measurable quality gap between data images.

use faultmit::analysis::{memory_mse, memory_mse_for_data, MonteCarloConfig, MonteCarloEngine};
use faultmit::core::{MitigationScheme, Scheme};
use faultmit::memsim::{
    Backend, BackendKind, DieBatch, FaultKindLaw, ImageSpec, MemoryConfig, PlannedSample,
    StreamSeeder,
};

const SEED: u64 = 0x1_DA7A;

fn memory() -> MemoryConfig {
    MemoryConfig::new(256, 32).unwrap()
}

fn stuck_at_zero_backend(kind: BackendKind) -> Backend {
    Backend::at_p_cell(kind, memory(), 1e-3)
        .unwrap()
        .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 1.0,
        })
        .unwrap()
}

#[test]
fn stuck_at_zero_faults_are_invisible_on_a_zeros_image_for_every_scheme() {
    // Draw real fault maps from every backend under the all-stuck-at-0 law
    // and check the per-map property directly: a zeros image observes no
    // error under any scheme, while a ones image observes errors on the
    // unprotected memory for every non-empty map.
    let plan: Vec<PlannedSample> = (0..20)
        .map(|index| PlannedSample {
            index,
            n_faults: 1 + index % 5,
        })
        .collect();
    let zeros = vec![0u64; memory().rows()];
    let ones = ImageSpec::Ones
        .try_materialise(memory())
        .unwrap()
        .materialise(memory().rows());
    for kind in BackendKind::ALL {
        let backend = stuck_at_zero_backend(kind);
        let batch =
            DieBatch::generate_with_backend(&backend, &StreamSeeder::new(SEED), &plan).unwrap();
        for (planned, map) in batch.iter() {
            for scheme in Scheme::fig5_catalogue() {
                assert_eq!(
                    memory_mse_for_data(&scheme, map, &zeros),
                    0.0,
                    "{kind}, sample {}, {}: stuck-at-0 corrupted a zeros image",
                    planned.index,
                    scheme.name()
                );
            }
            assert!(
                memory_mse_for_data(&Scheme::unprotected32(), map, &ones) > 0.0,
                "{kind}, sample {}: stuck-at-0 must corrupt a ones image",
                planned.index
            );
        }
    }
}

#[test]
fn zeros_image_campaigns_are_bit_identical_to_the_legacy_all_zeros_path() {
    // The fig5 protocol at a fixed seed: the legacy engine, the engine with
    // an explicit Zeros image, and the data-aware path fed an explicit
    // all-zeros word vector must accumulate identical bits.
    let schemes = Scheme::fig5_catalogue();
    let build = |image: Option<ImageSpec>| {
        let mut config = MonteCarloConfig::new(MemoryConfig::paper_16kb(), 5e-6)
            .unwrap()
            .with_samples_per_count(6)
            .with_max_failures(8);
        if let Some(image) = image {
            config = config.with_image(image);
        }
        MonteCarloEngine::new(config)
    };
    let legacy = build(None).run_catalogue(&schemes, SEED).unwrap();
    let imaged = build(Some(ImageSpec::Zeros))
        .run_catalogue(&schemes, SEED)
        .unwrap();
    for (a, b) in legacy.iter().zip(&imaged) {
        assert_eq!(a.scheme_name, b.scheme_name);
        assert_eq!(a.cdf, b.cdf, "{}", a.scheme_name);
        assert_eq!(
            a.cdf.total_weight().to_bits(),
            b.cdf.total_weight().to_bits()
        );
    }
    // Per-map: memory_mse and memory_mse_for_data on zeros agree exactly.
    let plan = [PlannedSample {
        index: 0,
        n_faults: 7,
    }];
    let backend = stuck_at_zero_backend(BackendKind::Mlc);
    let batch = DieBatch::generate_with_backend(&backend, &StreamSeeder::new(SEED), &plan).unwrap();
    let zeros = vec![0u64; memory().rows()];
    for (_, map) in batch.iter() {
        for scheme in Scheme::fig5_catalogue() {
            assert_eq!(
                memory_mse(&scheme, map).to_bits(),
                memory_mse_for_data(&scheme, map, &zeros).to_bits(),
                "{}",
                scheme.name()
            );
        }
    }
}

#[test]
fn asymmetric_campaigns_show_a_measurable_gap_between_images() {
    // The acceptance property: under a decay-style stuck-at law (90% of
    // faulty cells read 0) the ones image suffers far more than the zeros
    // image, with the uniform-random image strictly in between.
    let backend = Backend::at_p_cell(BackendKind::Mlc, memory(), 1e-3)
        .unwrap()
        .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 0.9,
        })
        .unwrap();
    let mean_for = |image: ImageSpec| {
        let engine = MonteCarloEngine::new(
            MonteCarloConfig::for_backend(backend)
                .with_samples_per_count(20)
                .with_max_failures(8)
                .with_image(image),
        );
        engine
            .run_catalogue(&[Scheme::unprotected32()], SEED)
            .unwrap()[0]
            .cdf
            .mean()
            .unwrap()
    };
    let zeros = mean_for(ImageSpec::Zeros);
    let ones = mean_for(ImageSpec::Ones);
    let random = mean_for(ImageSpec::UniformRandom { seed: 11 });
    assert!(
        ones > 3.0 * zeros,
        "no measurable gap: zeros = {zeros}, ones = {ones}"
    );
    assert!(
        zeros < random && random < ones,
        "random image must sit between the extremes: {zeros} / {random} / {ones}"
    );
}

#[test]
fn sparse_images_behave_like_near_zero_backgrounds() {
    // A low-entropy image stores almost no 1 bits, so a stuck-at-0-heavy
    // law barely hurts it — the application-data property the
    // heterogeneous-reliability line of work exploits.
    let backend = Backend::at_p_cell(BackendKind::Dram, memory(), 1e-3)
        .unwrap()
        .with_kind_law(FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 1.0,
        })
        .unwrap();
    let mean_for = |image: ImageSpec| {
        MonteCarloEngine::new(
            MonteCarloConfig::for_backend(backend)
                .with_samples_per_count(12)
                .with_max_failures(6)
                .with_image(image),
        )
        .run_catalogue(&[Scheme::unprotected32()], SEED)
        .unwrap()[0]
            .cdf
            .mean()
            .unwrap()
    };
    let sparse = mean_for(ImageSpec::Sparse { seed: 5 });
    let ones = mean_for(ImageSpec::Ones);
    assert!(
        sparse < ones / 10.0,
        "sparse data must be nearly immune to stuck-at-0 decay: {sparse} vs {ones}"
    );
}
