//! Integration tests of the application-quality pipeline (Table 1 / Fig. 7):
//! dataset generation → fixed-point storage in a faulty memory → training →
//! quality metric, across protection schemes.

use faultmit::apps::{Benchmark, QualityEvaluator};
use faultmit::core::Scheme;
use faultmit::memsim::{Fault, FaultMap, FaultMapSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluator(benchmark: Benchmark) -> QualityEvaluator {
    QualityEvaluator::builder(benchmark)
        .samples(160)
        .memory_rows(512)
        .build()
        .unwrap()
}

#[test]
fn every_benchmark_has_a_meaningful_baseline() {
    for benchmark in Benchmark::ALL {
        let eval = evaluator(benchmark);
        let baseline = eval.baseline_quality().unwrap();
        assert!(
            baseline > 0.2 && baseline <= 1.0,
            "{benchmark:?}: baseline {baseline}"
        );
    }
}

#[test]
fn secded_reference_keeps_quality_at_baseline_for_single_fault_rows() {
    // The Fig. 7 plots normalise so that H(39,32) SECDED sits at 1.0; with at
    // most one fault per word the SECDED-protected run must match the
    // fault-free baseline bit-for-bit.
    for benchmark in Benchmark::ALL {
        let eval = evaluator(benchmark);
        let baseline = eval.baseline_quality().unwrap();
        let config = eval.memory_config();
        // One fault per row in distinct rows.
        let faults = FaultMap::from_faults(
            config,
            (0..64).map(|r| Fault::bit_flip(r * 7 % config.rows(), (r * 5) % 32)),
        )
        .unwrap();
        let quality = eval
            .quality_with_fault_map(&Scheme::secded32(), &faults)
            .unwrap();
        assert!(
            (quality - baseline).abs() < 1e-9,
            "{benchmark:?}: SECDED quality {quality} vs baseline {baseline}"
        );
    }
}

#[test]
fn shuffling_beats_no_protection_under_heavy_msb_corruption() {
    for benchmark in Benchmark::ALL {
        let eval = evaluator(benchmark);
        let baseline = eval.baseline_quality().unwrap();
        let config = eval.memory_config();
        // Sign-bit faults in every fourth row: catastrophic without
        // protection.
        let faults = FaultMap::from_faults(
            config,
            (0..config.rows())
                .step_by(4)
                .map(|r| Fault::bit_flip(r, 31)),
        )
        .unwrap();

        let unprotected = eval
            .quality_with_fault_map(&Scheme::unprotected32(), &faults)
            .unwrap();
        let shuffled = eval
            .quality_with_fault_map(&Scheme::shuffle32(5).unwrap(), &faults)
            .unwrap();

        assert!(
            shuffled >= unprotected,
            "{benchmark:?}: shuffled {shuffled} vs unprotected {unprotected}"
        );
        assert!(
            (baseline - shuffled).abs() < 0.1,
            "{benchmark:?}: shuffled quality {shuffled} should stay near baseline {baseline}"
        );
    }
}

#[test]
fn fig7_ordering_no_correction_vs_shuffle_on_random_fault_maps() {
    // Average over a handful of random fault maps at a high fault count: the
    // bit-shuffling quality must dominate the unprotected quality, and the
    // nFM=2 configuration must be at least as good as P-ECC on average (the
    // paper's observation that nFM=2 already beats P-ECC).
    let eval = evaluator(Benchmark::Elasticnet);
    let baseline = eval.baseline_quality().unwrap();
    let sampler = FaultMapSampler::new(eval.memory_config());
    let mut rng = StdRng::seed_from_u64(31);

    let mut sums = [0.0f64; 3]; // unprotected, pecc, shuffle2
    let runs = 6;
    for _ in 0..runs {
        let faults = sampler.sample_with_count(&mut rng, 96).unwrap();
        sums[0] += eval
            .quality_with_fault_map(&Scheme::unprotected32(), &faults)
            .unwrap();
        sums[1] += eval
            .quality_with_fault_map(&Scheme::pecc32(), &faults)
            .unwrap();
        sums[2] += eval
            .quality_with_fault_map(&Scheme::shuffle32(2).unwrap(), &faults)
            .unwrap();
    }
    let unprotected = sums[0] / runs as f64;
    let pecc = sums[1] / runs as f64;
    let shuffle2 = sums[2] / runs as f64;

    assert!(
        shuffle2 > unprotected,
        "shuffle2 {shuffle2} vs unprotected {unprotected}"
    );
    assert!(
        shuffle2 + 1e-6 >= pecc,
        "shuffle2 {shuffle2} should not lose to P-ECC {pecc}"
    );
    assert!(
        (baseline - shuffle2).abs() < 0.15,
        "shuffle2 {shuffle2} vs baseline {baseline}"
    );
}

#[test]
fn quality_cdf_campaign_produces_weighted_distributions() {
    let eval = QualityEvaluator::builder(Benchmark::Knn)
        .samples(120)
        .memory_rows(256)
        .build()
        .unwrap();
    let result = eval
        .quality_cdf(&Scheme::shuffle32(1).unwrap(), 1e-3, 4, 3, 17)
        .unwrap();
    assert!(result.baseline_quality > 0.5);
    assert!(!result.cdf.is_empty());
    // Normalised quality lives in [0, 1].
    assert!(result.cdf.max().unwrap() <= 1.0 + 1e-12);
    assert!(result.cdf.min().unwrap() >= 0.0);
    // Yield at a trivially low quality bar is essentially 1.
    assert!(result.yield_at_min_quality(0.0) > 0.99);
}
