//! Equivalence suite for the evaluation kernel generations: the sparse MSE
//! kernel (`memory_mse_sparse*`, built on `observe_sparse` and the flat
//! fault map's row groups) and the bit-sliced block kernels
//! (`block_mse_into` over 64-die `u64` and 256-die `W256` `DieBlock` lanes
//! with a scalar tail) must be **bit-identical** to the scalar
//! `observe`-based kernel on every backend, image, and fault-kind law; the
//! campaign's reusable arenas — scalar, 64-die and 256-die transposed paths
//! alike, with lane-interleaved wide fault generation on or off — must
//! reproduce the fresh-allocation behaviour sample for sample with zero
//! steady-state heap traffic; and `--kernel auto` must resolve to the
//! documented kernel at every benched operating point.

use faultmit::analysis::{
    block_mse_into, memory_mse, memory_mse_for_data, memory_mse_sparse, memory_mse_sparse_with,
};
use faultmit::core::Scheme;
use faultmit::memsim::{
    Backend, BackendKind, BlockScratch, DieBlock, DieScratch, FaultKindLaw, ImageSpec, Lane,
    MemoryConfig, PlannedSample, SramVddBackend, StreamSeeder, W256,
};
use faultmit::sim::{
    Campaign, CampaignConfig, CollectRecords, KernelKind, MapPolicy, Parallelism, ShardSpec,
    AUTO_FAULTS_PER_ROW_THRESHOLD,
};

const SEED: u64 = 0x5AB5_EED6;

fn geometries() -> Vec<MemoryConfig> {
    // Deliberately irregular row counts: power-of-two, prime, and the
    // paper's 16 KB array.
    vec![
        MemoryConfig::new(64, 32).unwrap(),
        MemoryConfig::new(233, 32).unwrap(),
        MemoryConfig::paper_16kb(),
    ]
}

fn kind_laws() -> Vec<FaultKindLaw> {
    vec![
        FaultKindLaw::AlwaysFlip,
        FaultKindLaw::AsymmetricStuckAt {
            p_stuck_at_zero: 0.35,
        },
    ]
}

fn images() -> Vec<ImageSpec> {
    vec![
        ImageSpec::Zeros,
        ImageSpec::Ones,
        ImageSpec::UniformRandom { seed: 3 },
        ImageSpec::Sparse { seed: 3 },
    ]
}

fn campaign_config(backend: Backend, scratch_reuse: bool) -> CampaignConfig<Backend> {
    CampaignConfig::for_backend(backend)
        .unwrap()
        .with_samples_per_count(5)
        .with_max_failures(6)
        .with_parallelism(Parallelism::Serial)
        .with_scratch_reuse(scratch_reuse)
}

fn assert_records_bit_identical(a: &CollectRecords, b: &CollectRecords, context: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{context}: record count");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.sample_index, y.sample_index, "{context}");
        assert_eq!(x.n_faults, y.n_faults, "{context}");
        assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "{context}");
        assert_eq!(x.metrics.len(), y.metrics.len(), "{context}");
        for (m, n) in x.metrics.iter().zip(&y.metrics) {
            // to_bits: -0.0 vs +0.0 and NaN payloads must match exactly.
            assert_eq!(
                m.to_bits(),
                n.to_bits(),
                "{context}: sample {} metric {m} vs {n}",
                x.sample_index
            );
        }
    }
}

/// The tentpole guarantee: sparse and scalar MSE kernels agree bit for bit
/// on every (geometry × backend × kind-law × image) combination, sample for
/// sample — so flipping the engine to the sparse kernel cannot move any
/// figure by even one ULP.
#[test]
fn sparse_mse_kernel_is_bit_identical_to_the_scalar_kernel() {
    let schemes = Scheme::fig5_catalogue();
    for memory in geometries() {
        for kind in BackendKind::ALL {
            for law in kind_laws() {
                for spec in images() {
                    let backend = Backend::at_p_cell(kind, memory, 1e-3)
                        .unwrap()
                        .with_kind_law(law)
                        .unwrap();
                    let context = format!("{kind} {law:?} {spec:?} rows={}", memory.rows());
                    let image = spec.try_materialise(memory).unwrap();
                    let words = image.materialise(memory.rows());

                    // Scalar baseline: fresh allocations per die, generic
                    // observe path over a dense image vector.
                    let scalar = Campaign::new(campaign_config(backend, false))
                        .run(
                            &schemes,
                            SEED,
                            |scheme, map| memory_mse_for_data(scheme, map, &words),
                            CollectRecords::new,
                        )
                        .unwrap();

                    // Sparse kernel: scratch arena, row-group walk,
                    // observe_sparse, per-faulty-row image gather.
                    let sparse = Campaign::new(campaign_config(backend, true))
                        .run(
                            &schemes,
                            SEED,
                            |scheme, map| {
                                memory_mse_sparse_with(scheme, map, |row| image.word(row))
                            },
                            CollectRecords::new,
                        )
                        .unwrap();

                    assert_records_bit_identical(&scalar, &sparse, &context);
                }
            }
        }
    }
}

/// The zeros-background kernels (the historical Fig. 5 path) agree too,
/// including through the single-fault-per-row redraw policy.
#[test]
fn zeros_background_kernels_agree_under_every_map_policy() {
    let schemes = Scheme::fig5_catalogue();
    let memory = MemoryConfig::new(128, 32).unwrap();
    for kind in BackendKind::ALL {
        for policy in [
            MapPolicy::Unrestricted,
            MapPolicy::SingleFaultPerRow { max_redraws: 100 },
        ] {
            let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
            let config = campaign_config(backend, false).with_map_policy(policy);
            let scalar = Campaign::new(config)
                .run(&schemes, SEED, memory_mse, CollectRecords::new)
                .unwrap();
            let config = campaign_config(backend, true).with_map_policy(policy);
            let sparse = Campaign::new(config)
                .run(&schemes, SEED, memory_mse_sparse, CollectRecords::new)
                .unwrap();
            assert_records_bit_identical(&scalar, &sparse, &format!("{kind} {policy:?}"));
        }
    }
}

/// The DieScratch arena path must be indistinguishable from the legacy
/// fresh-allocation path when *everything else* is held fixed — isolating
/// the arena itself (the previous test also swaps the MSE kernel).
#[test]
fn scratch_reuse_toggle_does_not_change_any_sample() {
    let schemes = [Scheme::unprotected32(), Scheme::shuffle32(2).unwrap()];
    let memory = MemoryConfig::new(256, 32).unwrap();
    for kind in BackendKind::ALL {
        for law in kind_laws() {
            let backend = Backend::at_p_cell(kind, memory, 2e-3)
                .unwrap()
                .with_kind_law(law)
                .unwrap();
            let fresh = Campaign::new(campaign_config(backend, false))
                .run(&schemes, SEED, memory_mse, CollectRecords::new)
                .unwrap();
            let reused = Campaign::new(campaign_config(backend, true))
                .run(&schemes, SEED, memory_mse, CollectRecords::new)
                .unwrap();
            assert_records_bit_identical(&fresh, &reused, &format!("{kind} {law:?}"));
        }
    }
}

/// Scratch reuse stays bit-identical at any worker count (per-worker arenas
/// must not leak state between chunks).
#[test]
fn scratch_reuse_is_bit_identical_across_worker_counts() {
    let schemes = Scheme::fig7_catalogue();
    let memory = MemoryConfig::new(512, 32).unwrap();
    let backend = Backend::at_p_cell(BackendKind::Sram, memory, 1e-3).unwrap();
    let reference = Campaign::new(campaign_config(backend, true))
        .run(&schemes, SEED, memory_mse_sparse, CollectRecords::new)
        .unwrap();
    for workers in [2usize, 4, 8] {
        let threaded = Campaign::new(
            campaign_config(backend, true)
                .with_parallelism(Parallelism::threads(workers))
                .with_chunk_size(3),
        )
        .run(&schemes, SEED, memory_mse_sparse, CollectRecords::new)
        .unwrap();
        assert_records_bit_identical(&reference, &threaded, &format!("{workers} workers"));
    }
}

/// A tiny deterministic xorshift for the sweep parameters below — the
/// vendored `rand` streams stay reserved for the RNG-authority fault
/// sampling, so test-plan randomisation uses its own generator.
struct SweepRng(u64);

impl SweepRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// A value in `lo..=hi`.
    fn pick(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() as usize) % (hi - lo + 1)
    }
}

/// The bit-sliced block kernels join the equivalence family: across a
/// randomized sweep of backend × image × kind-law × campaign shape —
/// including budgets that are **not** multiples of either the 64-die or the
/// 256-die lane width, so the scalar tail and partial trailing blocks are
/// exercised in both widths — all four of the `scalar`, `sparse`,
/// `bitsliced`, and `bitsliced256` kernels agree bit for bit, sample for
/// sample. The block runs generate faults through the lane-interleaved
/// wide RNG path by default (on backends that opt in), so the sweep also
/// pins wide generation to the scalar RNG schedule; an explicit
/// wide-generation-off run closes the loop by checking the pure scalar
/// generation path against the same baseline.
#[test]
fn bitsliced_kernel_is_bit_identical_across_a_randomized_sweep() {
    let schemes = Scheme::fig5_catalogue();
    let mut sweep = SweepRng(SEED | 1);
    for kind in BackendKind::ALL {
        for law in kind_laws() {
            for spec in images() {
                // Odd budgets on both axes keep the total sample count an
                // odd number: never a multiple of 64 (let alone 256),
                // frequently below one full block, sometimes several
                // narrow blocks plus a tail — and always a partial block
                // plus tail for the 256-die width.
                let samples_per_count = 2 * sweep.pick(1, 4) + 1;
                let max_failures = 2 * sweep.pick(2, 5) as u64 + 1;
                let chunk_size = sweep.pick(1, 17);
                let memory = MemoryConfig::new(64 + sweep.pick(0, 192), 32).unwrap();
                let backend = Backend::at_p_cell(kind, memory, 2e-3)
                    .unwrap()
                    .with_kind_law(law)
                    .unwrap();
                let context = format!(
                    "{kind} {law:?} {spec:?} rows={} spc={samples_per_count} \
                     max={max_failures} chunk={chunk_size}",
                    memory.rows()
                );
                let image = spec.try_materialise(memory).unwrap();
                let words = image.materialise(memory.rows());
                let tuned = |scratch_reuse: bool, wide_generation: bool| {
                    CampaignConfig::for_backend(backend)
                        .unwrap()
                        .with_samples_per_count(samples_per_count)
                        .with_max_failures(max_failures)
                        .with_parallelism(Parallelism::Serial)
                        .with_chunk_size(chunk_size)
                        .with_scratch_reuse(scratch_reuse)
                        .with_wide_generation(wide_generation)
                };
                let config = |scratch_reuse: bool| tuned(scratch_reuse, true);

                let scalar = Campaign::new(config(false))
                    .run(
                        &schemes,
                        SEED,
                        |scheme, map| memory_mse_for_data(scheme, map, &words),
                        CollectRecords::new,
                    )
                    .unwrap();
                let sparse = Campaign::new(config(true))
                    .run(
                        &schemes,
                        SEED,
                        |scheme, map| memory_mse_sparse_with(scheme, map, |row| image.word(row)),
                        CollectRecords::new,
                    )
                    .unwrap();
                let bitsliced = Campaign::new(config(true))
                    .run_shard_blocks(
                        &schemes,
                        SEED,
                        ShardSpec::solo(),
                        |scheme, map| memory_mse_sparse_with(scheme, map, |row| image.word(row)),
                        |scheme, block: &DieBlock<'_>, out: &mut [f64]| {
                            block_mse_into(scheme, block, |row| image.word(row), out);
                        },
                        CollectRecords::new,
                    )
                    .unwrap();
                let bitsliced256 = Campaign::new(config(true))
                    .run_shard_blocks(
                        &schemes,
                        SEED,
                        ShardSpec::solo(),
                        |scheme, map| memory_mse_sparse_with(scheme, map, |row| image.word(row)),
                        |scheme, block: &DieBlock<'_, W256>, out: &mut [f64]| {
                            block_mse_into(scheme, block, |row| image.word(row), out);
                        },
                        CollectRecords::new,
                    )
                    .unwrap();
                // Same kernel, wide generation forced off: the scalar
                // per-die generation path must reproduce the exact same
                // records, proving the wide path changed nothing.
                let scalar_generation = Campaign::new(tuned(true, false))
                    .run_shard_blocks(
                        &schemes,
                        SEED,
                        ShardSpec::solo(),
                        |scheme, map| memory_mse_sparse_with(scheme, map, |row| image.word(row)),
                        |scheme, block: &DieBlock<'_, W256>, out: &mut [f64]| {
                            block_mse_into(scheme, block, |row| image.word(row), out);
                        },
                        CollectRecords::new,
                    )
                    .unwrap();

                assert_records_bit_identical(&scalar, &sparse, &context);
                assert_records_bit_identical(&scalar, &bitsliced, &context);
                assert_records_bit_identical(
                    &scalar,
                    &bitsliced256,
                    &format!("{context} (W256 lanes)"),
                );
                assert_records_bit_identical(
                    &scalar,
                    &scalar_generation,
                    &format!("{context} (W256 lanes, wide generation off)"),
                );
            }
        }
    }
}

/// Steady-state die generation through the arena performs **zero** heap
/// allocation: after a warm-up at the largest fault count, the arena's
/// reallocation counter stays flat for hundreds of dies on every backend.
#[test]
fn die_generation_reaches_zero_allocation_steady_state() {
    let memory = MemoryConfig::new(256, 32).unwrap();
    let seeder = StreamSeeder::new(SEED);
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
        let mut scratch = DieScratch::new(memory);
        // Warm-up: let every buffer grow to the campaign's peak demand.
        for sample in 0..8u64 {
            let mut rng = seeder.rng_for_sample(sample);
            scratch.generate(&backend, &mut rng, 48).unwrap();
        }
        let after_warmup = scratch.realloc_events();
        for sample in 8..308u64 {
            let mut rng = seeder.rng_for_sample(sample);
            let n = 1 + (sample as usize * 7) % 48;
            scratch.generate(&backend, &mut rng, n).unwrap();
        }
        assert_eq!(
            scratch.realloc_events(),
            after_warmup,
            "{kind}: steady-state generation must not touch the heap"
        );
    }
}

/// The transposed block path holds the same guarantee at any lane width:
/// once the lane buffers have grown to the campaign's peak demand
/// (`L::LANES` dies at the largest fault count), steady-state
/// `generate_block` calls — full blocks and partial tails alike — never
/// touch the heap. The gate runs with lane-interleaved wide generation
/// both on (the default, exercising the `WideRng` batch path on backends
/// that opt in) and off (the per-die scalar path), since the two paths
/// use different working buffers.
fn block_zero_alloc_gate<L: Lane>(width_label: &str, wide_generation: bool) {
    let memory = MemoryConfig::new(256, 32).unwrap();
    let seeder = StreamSeeder::new(SEED);
    let lanes = L::LANES as u64;
    let block_plan = |start: u64, len: usize, n_faults: &dyn Fn(u64) -> u64| {
        (0..len as u64)
            .map(|j| PlannedSample {
                index: start + j,
                n_faults: n_faults(start + j),
            })
            .collect::<Vec<_>>()
    };
    for kind in BackendKind::ALL {
        let backend = Backend::at_p_cell(kind, memory, 1e-3).unwrap();
        let mut scratch = BlockScratch::<L>::new(memory);
        scratch.set_wide_generation(wide_generation);
        // Warm-up: full blocks at the peak fault count grow every lane
        // buffer to the campaign's maximum demand.
        for block in 0..4u64 {
            let plan = block_plan(block * lanes, L::LANES, &|_| 48);
            scratch
                .generate_block(&backend, &seeder, &plan, None)
                .unwrap();
        }
        let after_warmup = scratch.realloc_events();
        for block in 0..64u64 {
            let start = 4 * lanes + block * lanes;
            // Partial tails (any length up to the lane width) and varying
            // per-die fault counts must all stay inside grown capacity.
            let len = 1 + (block as usize * 13) % L::LANES;
            let plan = block_plan(start, len, &|index| 1 + index % 48);
            scratch
                .generate_block(&backend, &seeder, &plan, None)
                .unwrap();
        }
        assert_eq!(
            scratch.realloc_events(),
            after_warmup,
            "{kind} ({width_label}, wide_generation={wide_generation}): \
             steady-state block generation must not touch the heap"
        );
    }
}

#[test]
fn block_generation_reaches_zero_allocation_steady_state() {
    block_zero_alloc_gate::<u64>("64-die u64 lanes", true);
    block_zero_alloc_gate::<u64>("64-die u64 lanes", false);
}

#[test]
fn wide_block_generation_reaches_zero_allocation_steady_state() {
    block_zero_alloc_gate::<W256>("256-die W256 lanes", true);
    block_zero_alloc_gate::<W256>("256-die W256 lanes", false);
}

/// The zero-allocation guarantee holds with metrics recording switched on:
/// an installed recorder turns the hot-path counter hooks into relaxed
/// atomic adds on preallocated slots, so steady-state generation still
/// never touches the heap — and the recorder's realloc counter agrees with
/// the arenas' own (only warm-up growth events, none in steady state).
#[test]
fn zero_allocation_steady_state_holds_with_metrics_recording_on() {
    use faultmit::obs;
    let recorder = std::sync::Arc::new(obs::Recorder::new());
    let guard = obs::install(&recorder);

    die_generation_reaches_zero_allocation_steady_state();
    block_zero_alloc_gate::<u64>("64-die u64 lanes, metrics on", true);
    block_zero_alloc_gate::<W256>("256-die W256 lanes, metrics on", true);

    drop(guard);
    let snapshot = recorder.snapshot();
    // The gates really were recorded: dies flowed through the counters and
    // the only realloc events are the warm-up growth the gates tolerate.
    assert!(snapshot.counter(obs::Counter::DiesGenerated) > 0);
    assert!(snapshot.counter(obs::Counter::WideGenLaneSteps) > 0);
    assert!(snapshot.counter(obs::Counter::ReallocEvents) > 0);
    assert!(
        snapshot
            .histogram(obs::Histogram::FaultsPerDie)
            .iter()
            .sum::<u64>()
            > 0
    );
}

/// `--kernel auto` resolves to the documented kernel at each benched
/// operating point of `BENCH_pipeline.json`: the Fig. 5 / Fig. 9 densities
/// (a 16 KB array simulated up to 24 faults per die) sit far below the
/// wide kernel's break-even and stay on the sparse kernel, while the
/// dense-ECC point (8192 faults per die, `P_cell ≈ 6.3e-2`) crosses it and
/// picks the 256-die bit-sliced kernel. Fixed kernels resolve to
/// themselves.
#[test]
fn auto_kernel_resolves_to_the_documented_kernel_at_each_benched_point() {
    let memory = MemoryConfig::paper_16kb();
    let threshold = memory.rows() as f64 * AUTO_FAULTS_PER_ROW_THRESHOLD;

    // `fig5_p1e-4` and `fig9_random_stuck` share the campaign shape: only
    // the kind law and stored image differ, neither of which feeds the
    // density policy.
    let sparse_point = {
        let backend = SramVddBackend::with_p_cell(memory, 1e-4).unwrap();
        CampaignConfig::for_backend(backend)
            .unwrap()
            .with_samples_per_count(10)
            .with_max_failures(24)
    };
    let expected = sparse_point.expected_faults_per_die().unwrap();
    assert_eq!(expected, 12.5, "mean of the 1..=24 failure-count sweep");
    assert!(expected < threshold);
    assert_eq!(
        KernelKind::Auto.resolve(expected, memory.rows()),
        KernelKind::Sparse
    );

    // `dense_ecc_p6.3e-2` plans every die at exactly 8192 faults.
    let cells = (memory.rows() * 32) as f64;
    let dense_point = {
        let backend = SramVddBackend::with_p_cell(memory, 8192.0 / cells).unwrap();
        CampaignConfig::for_backend(backend)
            .unwrap()
            .with_samples_per_count(256)
            .with_exact_failures(8192)
    };
    let expected = dense_point.expected_faults_per_die().unwrap();
    assert_eq!(expected, 8192.0, "exact-failure plans pin the density");
    assert!(expected >= threshold);
    assert_eq!(
        KernelKind::Auto.resolve(expected, memory.rows()),
        KernelKind::Bitsliced256
    );

    // Fixed kernels ignore the density entirely.
    for kernel in [
        KernelKind::Scalar,
        KernelKind::Sparse,
        KernelKind::Bitsliced,
        KernelKind::Bitsliced256,
    ] {
        assert_eq!(kernel.resolve(expected, memory.rows()), kernel);
    }
}
