//! End-to-end integration tests spanning the whole workspace: BIST → FM-LUT
//! → shuffled memory → quality analysis, compared against the ECC baselines
//! on identical dies.

use faultmit::analysis::{memory_mse, MonteCarloConfig, MonteCarloEngine};
use faultmit::core::{MitigationScheme, Scheme, SegmentGeometry, ShuffledMemory};
use faultmit::ecc::{DecodeOutcome, EccMemory, PeccMemory};
use faultmit::memsim::{DieSampler, Fault, FaultMap, MarchBist, MemoryConfig, SramArray};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_die(rows: usize, p_cell: f64, seed: u64) -> FaultMap {
    let config = MemoryConfig::new(rows, 32).unwrap();
    let sampler = DieSampler::new(config, p_cell).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    sampler.sample_die(&mut rng).unwrap()
}

#[test]
fn bist_driven_shuffled_memory_bounds_errors_on_a_random_die() {
    let config = MemoryConfig::new(512, 32).unwrap();
    let faults = sample_die(512, 2e-3, 11);
    assert!(!faults.is_empty(), "the sampled die should have faults");

    let array = SramArray::with_faults(config, faults);
    for n_fm in 1..=5usize {
        let geometry = SegmentGeometry::new(32, n_fm).unwrap();
        let mut memory = ShuffledMemory::from_bist(geometry, array.clone()).unwrap();
        let bound = geometry.max_error_magnitude();

        let mut violations = 0usize;
        for row in 0..config.rows() {
            let value = (row as u64).wrapping_mul(0x9E37_79B9) & config.word_mask();
            memory.write(row, value).unwrap();
            let read = memory.read(row).unwrap();
            // The single-fault bound can be exceeded only on rows with more
            // than one faulty cell.
            if read.abs_diff(value) > bound
                && memory.array().faults().faulty_columns(row).len() <= 1
            {
                violations += 1;
            }
        }
        assert_eq!(violations, 0, "n_FM = {n_fm}");
    }
}

#[test]
fn scheme_observe_matches_real_shuffled_memory_datapath() {
    // The stateless `Scheme::BitShuffle` model used by the analyses must agree
    // with the actual ShuffledMemory write/read datapath for single-fault rows.
    let config = MemoryConfig::new(64, 32).unwrap();
    for col in [0usize, 7, 15, 23, 31] {
        let faults = FaultMap::from_faults(config, [Fault::bit_flip(9, col)]).unwrap();
        for n_fm in 1..=5usize {
            let geometry = SegmentGeometry::new(32, n_fm).unwrap();
            let scheme = Scheme::BitShuffle(geometry);
            let mut memory = ShuffledMemory::from_fault_map(geometry, faults.clone()).unwrap();
            for &value in &[0u64, 0xFFFF_FFFF, 0x1234_5678, 0x8000_0001] {
                memory.write(9, value).unwrap();
                let hardware = memory.read(9).unwrap();
                let model = scheme.observe(&faults, 9, value).value;
                assert_eq!(hardware, model, "col {col}, n_FM {n_fm}, value {value:#x}");
            }
        }
    }
}

#[test]
fn ecc_memories_and_scheme_models_agree_on_correctability() {
    // Single fault per codeword: both the real ECC memory and the analysis
    // model deliver the original data.
    let storage_config = MemoryConfig::new(32, 39).unwrap();
    let faults = FaultMap::from_faults(storage_config, [Fault::bit_flip(5, 31)]).unwrap();
    let mut ecc = EccMemory::h39_32(32, faults).unwrap();
    ecc.write(5, 0xCAFE_F00D).unwrap();
    let decoded = ecc.read(5).unwrap();
    assert_eq!(decoded.data, 0xCAFE_F00D);
    assert_eq!(decoded.outcome, DecodeOutcome::CorrectedSingle);

    let data_config = MemoryConfig::new(32, 32).unwrap();
    let data_faults = FaultMap::from_faults(data_config, [Fault::bit_flip(5, 31)]).unwrap();
    let observed = Scheme::secded32().observe(&data_faults, 5, 0xCAFE_F00D);
    assert_eq!(observed.value, 0xCAFE_F00D);
    assert!(observed.reliable);
}

#[test]
fn pecc_memory_and_scheme_model_agree_on_lsb_exposure() {
    let storage_config = MemoryConfig::new(16, 38).unwrap();
    let faults = FaultMap::from_faults(storage_config, [Fault::bit_flip(2, 7)]).unwrap();
    let mut pecc = PeccMemory::paper_32bit(16, faults).unwrap();
    pecc.write(2, 0xAAAA_0000).unwrap();
    assert_eq!(pecc.read(2).unwrap().data, 0xAAAA_0000 ^ (1 << 7));

    let data_config = MemoryConfig::new(16, 32).unwrap();
    let data_faults = FaultMap::from_faults(data_config, [Fault::bit_flip(2, 7)]).unwrap();
    let observed = Scheme::pecc32().observe(&data_faults, 2, 0xAAAA_0000);
    assert_eq!(observed.value, 0xAAAA_0000 ^ (1 << 7));
}

#[test]
fn fig5_ordering_holds_on_a_sampled_die_population() {
    // On the same die population, the per-scheme MSE at a fixed yield target
    // must follow the paper's ordering: unprotected is orders of magnitude
    // worse than any shuffling configuration, and finer segments help.
    // 256 × 32 = 8192 cells at P_cell = 5e-4: mean ≈ 4 failures; 16 failure
    // counts cover well beyond the 99.9 % yield target queried below.
    let config = MonteCarloConfig::new(MemoryConfig::new(256, 32).unwrap(), 5e-4)
        .unwrap()
        .with_samples_per_count(25)
        .with_max_failures(16);
    let engine = MonteCarloEngine::new(config);

    let unprotected = engine.run(&Scheme::unprotected32(), 99).unwrap();
    let shuffle1 = engine.run(&Scheme::shuffle32(1).unwrap(), 99).unwrap();
    let shuffle5 = engine.run(&Scheme::shuffle32(5).unwrap(), 99).unwrap();

    // 0.99 rather than 0.999: with 25 samples per count the 99.9th
    // percentile is a single order statistic and its value is dominated by
    // whether the worst sampled die happens to contain a double-fault row
    // (which no shuffling granularity can fully protect).
    let target = 0.99;
    let mse_unprotected = unprotected.mse_for_yield(target);
    let mse_shuffle1 = shuffle1.mse_for_yield(target);
    let mse_shuffle5 = shuffle5.mse_for_yield(target);

    // All three are reachable on this small population.
    let (u, s1, s5) = (
        mse_unprotected.expect("unprotected yield target reachable"),
        mse_shuffle1.expect("nFM=1 yield target reachable"),
        mse_shuffle5.expect("nFM=5 yield target reachable"),
    );
    assert!(
        s1 * 30.0 <= u,
        "paper claims ≥30x MSE reduction even for nFM=1: unprotected {u:.3e}, nFM=1 {s1:.3e}"
    );
    assert!(s5 <= s1);
}

#[test]
fn mse_is_consistent_between_scheme_model_and_memory_simulation() {
    // For bit-flip faults and an all-zeros background, the Eq. (6) MSE
    // computed through the Scheme model matches a direct simulation through
    // the unprotected SramArray.
    let config = MemoryConfig::new(128, 32).unwrap();
    let faults = sample_die(128, 1e-3, 5);
    let scheme_mse = memory_mse(&Scheme::unprotected32(), &faults);

    let mut array = SramArray::with_faults(config, faults);
    let mut direct = 0.0;
    for row in 0..config.rows() {
        array.write(row, 0).unwrap();
        let observed = array.read(row).unwrap();
        let mut diff = observed;
        while diff != 0 {
            let bit = diff.trailing_zeros();
            direct += 4.0_f64.powi(bit as i32);
            diff &= diff - 1;
        }
    }
    direct /= config.rows() as f64;
    assert!((scheme_mse - direct).abs() <= 1e-9 * direct.max(1.0));
}

#[test]
fn bist_report_and_fault_map_describe_the_same_die() {
    let config = MemoryConfig::new(256, 32).unwrap();
    let faults = sample_die(256, 2e-3, 21);
    let mut array = SramArray::with_faults(config, faults.clone());
    let report = MarchBist::new().run(&mut array).unwrap();
    assert_eq!(report.fault_count(), faults.fault_count());
    for fault in faults.iter() {
        assert!(report.faulty_columns(fault.row).contains(&fault.col));
    }
}
